// Package cluster models the distributed system's processing resources:
// heterogeneous processors whose execution rate is measured in Mflop/s
// and whose availability varies over time (paper §3: "The availability
// of each processor can vary over time (processors are not dedicated and
// may have other tasks that partially use their resources)").
//
// Availability is modelled as a dimensionless factor in [0, 1] applied
// to a processor's base rate. Models are piecewise-constant (or
// piecewise-constant approximations of continuous functions), which lets
// the simulator integrate work across availability changes exactly.
package cluster

import (
	"fmt"
	"math"

	"pnsched/internal/rng"
	"pnsched/internal/units"
)

// AvailabilityModel describes the fraction of a processor's base rate
// that is available at a given simulated time.
type AvailabilityModel interface {
	// At returns the availability factor in [0, 1] at time t.
	At(t units.Seconds) float64
	// NextChange returns the earliest instant strictly after t at which
	// the availability may change, or units.Inf() if it never changes.
	// Between t and NextChange(t) the factor returned by At is constant.
	NextChange(t units.Seconds) units.Seconds
	// Name identifies the model in logs and tables.
	Name() string
}

// Full is the dedicated-processor model: availability 1 forever. The
// paper's main experiments use this ("each processor was assumed to have
// a fixed execution rate").
type Full struct{}

// At implements AvailabilityModel.
func (Full) At(units.Seconds) float64 { return 1 }

// NextChange implements AvailabilityModel.
func (Full) NextChange(units.Seconds) units.Seconds { return units.Inf() }

// Name implements AvailabilityModel.
func (Full) Name() string { return "full" }

// RandomWalk models a non-dedicated processor whose availability drifts
// in steps: every Interval seconds the factor moves by a uniform step in
// [-Step, +Step], reflected into [Floor, 1]. The walk is generated
// lazily from its own deterministic stream, so two walks with the same
// parameters and seed agree exactly and queries at arbitrary times are
// consistent.
type RandomWalk struct {
	Interval units.Seconds
	Step     float64
	Floor    float64 // availability never drops below this (0 allows full outage)
	start    float64
	r        *rng.RNG
	segments []float64 // availability of segment i = [i*Interval, (i+1)*Interval)
}

// NewRandomWalk creates a random-walk availability model starting at
// factor start. It panics on non-positive interval or start outside
// [floor, 1] — construction-time configuration errors.
func NewRandomWalk(interval units.Seconds, step, floor, start float64, r *rng.RNG) *RandomWalk {
	if interval <= 0 {
		panic("cluster: random walk interval must be positive")
	}
	if floor < 0 || floor > 1 || start < floor || start > 1 {
		panic(fmt.Sprintf("cluster: invalid random walk bounds floor=%v start=%v", floor, start))
	}
	return &RandomWalk{Interval: interval, Step: step, Floor: floor, start: start, r: r}
}

func (w *RandomWalk) segment(i int) float64 {
	for len(w.segments) <= i {
		prev := w.start
		if n := len(w.segments); n > 0 {
			prev = w.segments[n-1]
		}
		next := prev + w.r.Uniform(-w.Step, w.Step)
		// Reflect into [Floor, 1].
		if next > 1 {
			next = 2 - next
		}
		if next < w.Floor {
			next = 2*w.Floor - next
		}
		next = math.Max(w.Floor, math.Min(1, next))
		w.segments = append(w.segments, next)
	}
	return w.segments[i]
}

// At implements AvailabilityModel.
func (w *RandomWalk) At(t units.Seconds) float64 {
	if t < 0 {
		t = 0
	}
	return w.segment(int(float64(t) / float64(w.Interval)))
}

// NextChange implements AvailabilityModel. The result is strictly
// greater than t: when t sits exactly on a step boundary,
// floating-point rounding of i×Interval could otherwise reproduce t
// itself and stall the simulator's work integration.
func (w *RandomWalk) NextChange(t units.Seconds) units.Seconds {
	if t < 0 {
		t = 0
	}
	i := int(float64(t)/float64(w.Interval)) + 1
	nc := units.Seconds(float64(i) * float64(w.Interval))
	for nc <= t {
		i++
		nc = units.Seconds(float64(i) * float64(w.Interval))
	}
	return nc
}

// Name implements AvailabilityModel.
func (w *RandomWalk) Name() string { return "random-walk" }

// Sinusoidal models diurnal-style load variation: availability oscillates
// around Mean with the given Amplitude and Period. It is evaluated as a
// piecewise-constant approximation with Period/32 steps so simulation
// integration remains exact with respect to the model.
type Sinusoidal struct {
	Mean      float64
	Amplitude float64
	Period    units.Seconds
	Phase     float64 // radians
}

func (s Sinusoidal) step() units.Seconds { return s.Period / 32 }

// At implements AvailabilityModel.
func (s Sinusoidal) At(t units.Seconds) float64 {
	if t < 0 {
		t = 0
	}
	// Quantise to the step grid, then evaluate the sinusoid.
	st := s.step()
	q := math.Floor(float64(t)/float64(st)) * float64(st)
	v := s.Mean + s.Amplitude*math.Sin(2*math.Pi*q/float64(s.Period)+s.Phase)
	return math.Max(0, math.Min(1, v))
}

// NextChange implements AvailabilityModel. The result is strictly
// greater than t (see RandomWalk.NextChange for why the loop is
// needed).
func (s Sinusoidal) NextChange(t units.Seconds) units.Seconds {
	if t < 0 {
		t = 0
	}
	st := s.step()
	i := math.Floor(float64(t)/float64(st)) + 1
	nc := units.Seconds(i * float64(st))
	for nc <= t {
		i++
		nc = units.Seconds(i * float64(st))
	}
	return nc
}

// Name implements AvailabilityModel.
func (Sinusoidal) Name() string { return "sinusoidal" }

// OffAfter models failure injection: the processor runs at full
// availability until Cutoff, then goes offline permanently (a machine
// being switched off — the scenario §3 gives for why processors hold no
// local queues).
type OffAfter struct {
	Cutoff units.Seconds
}

// At implements AvailabilityModel.
func (o OffAfter) At(t units.Seconds) float64 {
	if t < o.Cutoff {
		return 1
	}
	return 0
}

// NextChange implements AvailabilityModel.
func (o OffAfter) NextChange(t units.Seconds) units.Seconds {
	if t < o.Cutoff {
		return o.Cutoff
	}
	return units.Inf()
}

// Name implements AvailabilityModel.
func (o OffAfter) Name() string { return fmt.Sprintf("off-after(%v)", o.Cutoff) }

// MarkovOnOff is a two-state availability model: the processor
// alternates between an "on" state (availability OnLevel) and an "off"
// state (availability OffLevel), with exponentially distributed state
// durations — the classic model for interactive machines that are
// reclaimed by their owners for bursts. State segments are generated
// lazily and deterministically from the model's stream.
type MarkovOnOff struct {
	MeanOn, MeanOff   units.Seconds
	OnLevel, OffLevel float64
	r                 *rng.RNG
	boundaries        []units.Seconds // cumulative segment end times
	states            []bool          // true = on, per segment
}

// NewMarkovOnOff creates a Markov on/off model starting in the on
// state. It panics on non-positive mean durations or levels outside
// [0, 1].
func NewMarkovOnOff(meanOn, meanOff units.Seconds, onLevel, offLevel float64, r *rng.RNG) *MarkovOnOff {
	if meanOn <= 0 || meanOff <= 0 {
		panic("cluster: markov on/off means must be positive")
	}
	if onLevel < 0 || onLevel > 1 || offLevel < 0 || offLevel > 1 {
		panic(fmt.Sprintf("cluster: markov levels (%v, %v) outside [0,1]", onLevel, offLevel))
	}
	return &MarkovOnOff{MeanOn: meanOn, MeanOff: meanOff, OnLevel: onLevel, OffLevel: offLevel, r: r}
}

// extend generates segments until the boundary list covers t.
func (m *MarkovOnOff) extend(t units.Seconds) {
	for len(m.boundaries) == 0 || m.boundaries[len(m.boundaries)-1] <= t {
		var prev units.Seconds
		on := true
		if n := len(m.boundaries); n > 0 {
			prev = m.boundaries[n-1]
			on = !m.states[n-1]
		}
		mean := m.MeanOn
		if !on {
			mean = m.MeanOff
		}
		dur := units.Seconds(m.r.Exponential(float64(mean)))
		if dur <= 0 {
			dur = units.Seconds(1e-6)
		}
		m.boundaries = append(m.boundaries, prev+dur)
		m.states = append(m.states, on)
	}
}

// segmentAt returns the index of the segment containing t.
func (m *MarkovOnOff) segmentAt(t units.Seconds) int {
	m.extend(t)
	for i, end := range m.boundaries {
		if t < end {
			return i
		}
	}
	return len(m.boundaries) - 1 // unreachable: extend covers t
}

// At implements AvailabilityModel.
func (m *MarkovOnOff) At(t units.Seconds) float64 {
	if t < 0 {
		t = 0
	}
	if m.states[m.segmentAt(t)] {
		return m.OnLevel
	}
	return m.OffLevel
}

// NextChange implements AvailabilityModel.
func (m *MarkovOnOff) NextChange(t units.Seconds) units.Seconds {
	if t < 0 {
		t = 0
	}
	return m.boundaries[m.segmentAt(t)]
}

// Name implements AvailabilityModel.
func (*MarkovOnOff) Name() string { return "markov-on-off" }

// Trace is an explicit piecewise-constant availability schedule, e.g.
// replayed from measurements of a real shared machine.
type Trace struct {
	// Times[i] is the start of segment i; Values[i] its availability.
	// Times must be strictly increasing and start at 0.
	Times  []units.Seconds
	Values []float64
}

// NewTrace validates and returns a trace model.
func NewTrace(times []units.Seconds, values []float64) (Trace, error) {
	if len(times) == 0 || len(times) != len(values) {
		return Trace{}, fmt.Errorf("cluster: trace needs equal, non-zero lengths (got %d, %d)", len(times), len(values))
	}
	if times[0] != 0 {
		return Trace{}, fmt.Errorf("cluster: trace must start at t=0, got %v", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return Trace{}, fmt.Errorf("cluster: trace times not increasing at %d", i)
		}
	}
	for i, v := range values {
		if v < 0 || v > 1 {
			return Trace{}, fmt.Errorf("cluster: trace value %v at %d outside [0,1]", v, i)
		}
	}
	return Trace{Times: times, Values: values}, nil
}

// At implements AvailabilityModel.
func (tr Trace) At(t units.Seconds) float64 {
	if t < 0 {
		t = 0
	}
	// Linear scan is fine: traces are short and queries are warm.
	v := tr.Values[0]
	for i, start := range tr.Times {
		if t >= start {
			v = tr.Values[i]
		} else {
			break
		}
	}
	return v
}

// NextChange implements AvailabilityModel.
func (tr Trace) NextChange(t units.Seconds) units.Seconds {
	for _, start := range tr.Times {
		if start > t {
			return start
		}
	}
	return units.Inf()
}

// Name implements AvailabilityModel.
func (Trace) Name() string { return "trace" }

// Processor is one heterogeneous compute resource.
type Processor struct {
	ID       int
	BaseRate units.Rate // peak execution rate (Linpack-style rating)
	Avail    AvailabilityModel
}

// RateAt returns the effective rate at time t.
func (p *Processor) RateAt(t units.Seconds) units.Rate {
	return p.BaseRate.Scale(p.Avail.At(t))
}

// maxIntegrationSegments bounds CompletionTime's segment walk; beyond
// this the work is treated as never completing (pathological model).
const maxIntegrationSegments = 1 << 20

// CompletionTime returns the instant at which `work` MFLOPs started at
// `start` finish on this processor, integrating the rate across
// availability changes. It returns units.Inf() if the processor can
// never complete the work (e.g. permanently offline).
func (p *Processor) CompletionTime(start units.Seconds, work units.MFlops) units.Seconds {
	if work <= 0 {
		return start
	}
	t := start
	remaining := work
	for i := 0; i < maxIntegrationSegments; i++ {
		rate := p.RateAt(t)
		next := p.Avail.NextChange(t)
		if rate > 0 {
			finish := t + remaining.TimeOn(rate)
			if finish <= next {
				return finish
			}
			remaining -= rate.WorkIn(next - t)
		}
		if next.IsInf() {
			// Constant zero rate forever: never finishes.
			if rate <= 0 {
				return units.Inf()
			}
			// Unreachable: with constant positive rate finish <= next.
			return t + remaining.TimeOn(rate)
		}
		t = next
	}
	return units.Inf()
}

// Cluster is a set of processors plus the dedicated scheduler host
// (paper §3: "A single processor is dedicated to scheduling"; it is not
// part of the worker set).
type Cluster struct {
	Procs []*Processor
}

// New creates a cluster from explicit base rates, all fully available.
func New(rates []units.Rate) *Cluster {
	c := &Cluster{Procs: make([]*Processor, len(rates))}
	for i, r := range rates {
		c.Procs[i] = &Processor{ID: i, BaseRate: r, Avail: Full{}}
	}
	return c
}

// NewHeterogeneous creates m processors with base rates drawn uniformly
// from [minRate, maxRate] — the heterogeneous processor pool of §4.2.
// It panics on invalid bounds or m <= 0.
func NewHeterogeneous(m int, minRate, maxRate units.Rate, r *rng.RNG) *Cluster {
	if m <= 0 {
		panic("cluster: need at least one processor")
	}
	if minRate <= 0 || maxRate < minRate {
		panic(fmt.Sprintf("cluster: invalid rate bounds [%v, %v]", minRate, maxRate))
	}
	c := &Cluster{Procs: make([]*Processor, m)}
	for i := 0; i < m; i++ {
		rate := units.Rate(r.Uniform(float64(minRate), float64(maxRate)))
		c.Procs[i] = &Processor{ID: i, BaseRate: rate, Avail: Full{}}
	}
	return c
}

// M returns the number of processors.
func (c *Cluster) M() int { return len(c.Procs) }

// RatesAt returns every processor's effective rate at time t.
func (c *Cluster) RatesAt(t units.Seconds) []units.Rate {
	out := make([]units.Rate, len(c.Procs))
	for i, p := range c.Procs {
		out[i] = p.RateAt(t)
	}
	return out
}

// TotalRateAt returns the aggregate effective rate at time t — the
// ΣPⱼ denominator of the theoretical optimum ψ.
func (c *Cluster) TotalRateAt(t units.Seconds) units.Rate {
	var total units.Rate
	for _, p := range c.Procs {
		total += p.RateAt(t)
	}
	return total
}

// WithAvailability returns a copy of the cluster sharing base rates but
// with the availability model produced by mk for each processor.
func (c *Cluster) WithAvailability(mk func(i int) AvailabilityModel) *Cluster {
	out := &Cluster{Procs: make([]*Processor, len(c.Procs))}
	for i, p := range c.Procs {
		out.Procs[i] = &Processor{ID: p.ID, BaseRate: p.BaseRate, Avail: mk(i)}
	}
	return out
}
