package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"pnsched/internal/rng"
	"pnsched/internal/units"
)

func TestFullAvailability(t *testing.T) {
	p := &Processor{ID: 0, BaseRate: 100, Avail: Full{}}
	if got := p.RateAt(0); got != 100 {
		t.Errorf("RateAt(0) = %v", got)
	}
	if got := p.RateAt(1e9); got != 100 {
		t.Errorf("RateAt(1e9) = %v", got)
	}
	if !(Full{}).NextChange(5).IsInf() {
		t.Error("Full.NextChange must be Inf")
	}
}

func TestCompletionTimeConstantRate(t *testing.T) {
	p := &Processor{BaseRate: 100, Avail: Full{}}
	// 1000 MFLOPs at 100 Mflop/s = 10 s.
	if got := p.CompletionTime(5, 1000); got != 15 {
		t.Errorf("CompletionTime = %v, want 15", got)
	}
	if got := p.CompletionTime(5, 0); got != 5 {
		t.Errorf("zero work completion = %v, want 5 (immediate)", got)
	}
}

func TestCompletionTimeAcrossOutage(t *testing.T) {
	// Full rate until t=10, then off forever.
	p := &Processor{BaseRate: 10, Avail: OffAfter{Cutoff: 10}}
	// 50 MFLOPs from t=0 at 10 Mflop/s: finishes at t=5, before cutoff.
	if got := p.CompletionTime(0, 50); got != 5 {
		t.Errorf("before cutoff = %v, want 5", got)
	}
	// 200 MFLOPs: only 100 can complete before the cutoff → never done.
	if got := p.CompletionTime(0, 200); !got.IsInf() {
		t.Errorf("work across permanent outage = %v, want Inf", got)
	}
	// Starting after the cutoff: immediately impossible.
	if got := p.CompletionTime(20, 1); !got.IsInf() {
		t.Errorf("start after cutoff = %v, want Inf", got)
	}
}

func TestCompletionTimeThroughTrace(t *testing.T) {
	tr, err := NewTrace(
		[]units.Seconds{0, 10, 20},
		[]float64{1, 0, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := &Processor{BaseRate: 10, Avail: tr}
	// 150 MFLOPs from t=0: 100 done by t=10; outage 10..20; then at
	// rate 5, remaining 50 takes 10s → finish t=30.
	if got := p.CompletionTime(0, 150); math.Abs(float64(got)-30) > 1e-9 {
		t.Errorf("CompletionTime = %v, want 30", got)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil, nil); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := NewTrace([]units.Seconds{1}, []float64{1}); err == nil {
		t.Error("trace not starting at 0 must error")
	}
	if _, err := NewTrace([]units.Seconds{0, 0}, []float64{1, 1}); err == nil {
		t.Error("non-increasing times must error")
	}
	if _, err := NewTrace([]units.Seconds{0}, []float64{1.5}); err == nil {
		t.Error("availability > 1 must error")
	}
	if _, err := NewTrace([]units.Seconds{0}, []float64{1, 1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestTraceAtAndNextChange(t *testing.T) {
	tr, err := NewTrace([]units.Seconds{0, 5}, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0); got != 0.2 {
		t.Errorf("At(0) = %v", got)
	}
	if got := tr.At(4.99); got != 0.2 {
		t.Errorf("At(4.99) = %v", got)
	}
	if got := tr.At(5); got != 0.8 {
		t.Errorf("At(5) = %v", got)
	}
	if got := tr.At(-3); got != 0.2 {
		t.Errorf("At(-3) = %v (negative clamps to 0)", got)
	}
	if got := tr.NextChange(0); got != 5 {
		t.Errorf("NextChange(0) = %v", got)
	}
	if got := tr.NextChange(5); !got.IsInf() {
		t.Errorf("NextChange(5) = %v, want Inf", got)
	}
}

func TestRandomWalkBoundsAndDeterminism(t *testing.T) {
	mk := func() *RandomWalk {
		return NewRandomWalk(10, 0.2, 0.3, 0.9, rng.New(77))
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		tm := units.Seconds(i) * 7
		va, vb := a.At(tm), b.At(tm)
		if va != vb {
			t.Fatalf("random walk not deterministic at t=%v", tm)
		}
		if va < 0.3-1e-12 || va > 1+1e-12 {
			t.Fatalf("availability %v outside [0.3, 1] at t=%v", va, tm)
		}
	}
}

func TestRandomWalkPiecewiseConstant(t *testing.T) {
	w := NewRandomWalk(10, 0.2, 0, 0.5, rng.New(3))
	// Within one interval the value must not change.
	v0 := w.At(0)
	if w.At(9.999) != v0 {
		t.Error("value changed within an interval")
	}
	if got := w.NextChange(3); got != 10 {
		t.Errorf("NextChange(3) = %v, want 10", got)
	}
	if got := w.NextChange(10); got != 20 {
		t.Errorf("NextChange(10) = %v, want 20", got)
	}
}

func TestRandomWalkValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRandomWalk(0, 0.1, 0, 0.5, rng.New(1)) },
		func() { NewRandomWalk(10, 0.1, -0.1, 0.5, rng.New(1)) },
		func() { NewRandomWalk(10, 0.1, 0.6, 0.5, rng.New(1)) },
		func() { NewRandomWalk(10, 0.1, 0, 1.5, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid random walk config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSinusoidalBounds(t *testing.T) {
	s := Sinusoidal{Mean: 0.6, Amplitude: 0.8, Period: 100} // intentionally clips
	for i := 0; i < 1000; i++ {
		v := s.At(units.Seconds(i))
		if v < 0 || v > 1 {
			t.Fatalf("sinusoidal availability %v outside [0,1]", v)
		}
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestSinusoidalStepConsistency(t *testing.T) {
	s := Sinusoidal{Mean: 0.5, Amplitude: 0.3, Period: 320}
	// Step is Period/32 = 10s; within a step the value is constant.
	if s.At(0) != s.At(9.99) {
		t.Error("value changed within a quantisation step")
	}
	if got := s.NextChange(0); got != 10 {
		t.Errorf("NextChange(0) = %v, want 10", got)
	}
	// Value must actually vary across the period.
	if s.At(0) == s.At(80) {
		t.Error("sinusoid appears constant")
	}
}

func TestOffAfter(t *testing.T) {
	o := OffAfter{Cutoff: 100}
	if o.At(99.9) != 1 || o.At(100) != 0 || o.At(1e9) != 0 {
		t.Error("OffAfter availability wrong")
	}
	if got := o.NextChange(0); got != 100 {
		t.Errorf("NextChange(0) = %v", got)
	}
	if !o.NextChange(100).IsInf() {
		t.Error("NextChange after cutoff must be Inf")
	}
}

func TestNewHeterogeneous(t *testing.T) {
	c := NewHeterogeneous(50, 50, 500, rng.New(42))
	if c.M() != 50 {
		t.Fatalf("M = %d", c.M())
	}
	distinct := map[units.Rate]bool{}
	for i, p := range c.Procs {
		if p.ID != i {
			t.Errorf("proc %d has ID %d", i, p.ID)
		}
		if p.BaseRate < 50 || p.BaseRate >= 500 {
			t.Errorf("rate %v outside [50,500)", p.BaseRate)
		}
		distinct[p.BaseRate] = true
	}
	if len(distinct) < 40 {
		t.Errorf("only %d distinct rates among 50 — not heterogeneous", len(distinct))
	}
}

func TestNewHeterogeneousValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHeterogeneous(0, 1, 2, rng.New(1)) },
		func() { NewHeterogeneous(5, 0, 2, rng.New(1)) },
		func() { NewHeterogeneous(5, 3, 2, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid cluster config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestClusterAggregates(t *testing.T) {
	c := New([]units.Rate{100, 200, 300})
	if got := c.TotalRateAt(0); got != 600 {
		t.Errorf("TotalRateAt = %v", got)
	}
	rates := c.RatesAt(0)
	if len(rates) != 3 || rates[1] != 200 {
		t.Errorf("RatesAt = %v", rates)
	}
}

func TestWithAvailability(t *testing.T) {
	c := New([]units.Rate{100, 200})
	varied := c.WithAvailability(func(i int) AvailabilityModel {
		return OffAfter{Cutoff: units.Seconds(10 * (i + 1))}
	})
	if varied.Procs[0].RateAt(5) != 100 || varied.Procs[0].RateAt(15) != 0 {
		t.Error("availability override not applied")
	}
	// Original cluster untouched.
	if c.Procs[0].RateAt(15) != 100 {
		t.Error("WithAvailability mutated the source cluster")
	}
}

// NextChange must be strictly increasing even when queried at its own
// returned boundaries — floating-point step accumulation once made
// Sinusoidal.NextChange return its input, stalling work integration.
func TestNextChangeStrictlyAdvances(t *testing.T) {
	models := []AvailabilityModel{
		Sinusoidal{Mean: 0.9, Amplitude: 0.05, Period: units.Seconds(390.54867968581877)},
		Sinusoidal{Mean: 0.7, Amplitude: 0.25, Period: 163},
		NewRandomWalk(units.Seconds(12.204646240181887), 0.2, 0.2, 0.9, rng.New(1)),
		NewMarkovOnOff(17.77, 3.33, 1, 0.2, rng.New(2)),
	}
	for _, m := range models {
		tm := units.Seconds(0)
		for i := 0; i < 5000; i++ {
			nc := m.NextChange(tm)
			if nc <= tm {
				t.Fatalf("%s: NextChange(%.12f) = %.12f did not advance (step %d)",
					m.Name(), float64(tm), float64(nc), i)
			}
			tm = nc
		}
	}
}

// Completion time must be monotone in work for any start time.
func TestCompletionMonotoneInWork(t *testing.T) {
	p := &Processor{BaseRate: 50, Avail: Sinusoidal{Mean: 0.6, Amplitude: 0.4, Period: 40}}
	f := func(aRaw, bRaw uint16, startRaw uint8) bool {
		wa, wb := units.MFlops(aRaw), units.MFlops(bRaw)
		if wa > wb {
			wa, wb = wb, wa
		}
		start := units.Seconds(startRaw)
		return p.CompletionTime(start, wa) <= p.CompletionTime(start, wb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Work computed via CompletionTime must round-trip: integrating the rate
// between start and completion recovers the requested work.
func TestCompletionTimeIntegration(t *testing.T) {
	tr, err := NewTrace(
		[]units.Seconds{0, 10, 25, 40},
		[]float64{1, 0.25, 0.75, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := &Processor{BaseRate: 20, Avail: tr}
	work := units.MFlops(500)
	finish := p.CompletionTime(2, work)
	// Numerically integrate rate from 2 to finish with fine steps.
	var done float64
	const dt = 0.001
	for t0 := 2.0; t0 < float64(finish); t0 += dt {
		step := math.Min(dt, float64(finish)-t0)
		done += float64(p.RateAt(units.Seconds(t0))) * step
	}
	if math.Abs(done-float64(work)) > 1 {
		t.Errorf("integrated work = %v, want %v", done, work)
	}
}
