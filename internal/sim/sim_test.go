package sim

import (
	"math"
	"testing"

	"pnsched/internal/cluster"
	"pnsched/internal/network"
	"pnsched/internal/rng"
	"pnsched/internal/sched"
	"pnsched/internal/task"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

func freeNet(m int) *network.Network { return network.ZeroCost(m) }

func fixedNet(m int, cost units.Seconds) *network.Network {
	return network.New(m, network.Config{MeanCost: cost}, rng.New(99))
}

func mkTasks(sizes ...units.MFlops) []task.Task {
	out := make([]task.Task, len(sizes))
	for i, s := range sizes {
		out[i] = task.Task{ID: task.ID(i), Size: s}
	}
	return out
}

func TestSingleTaskSingleProc(t *testing.T) {
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     mkTasks(100),
		Scheduler: sched.EF{},
	})
	if res.Completed != 1 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %v, want 10", res.Makespan)
	}
	if math.Abs(res.Efficiency-1) > 1e-9 {
		t.Errorf("efficiency = %v, want 1", res.Efficiency)
	}
	if res.Procs[0].Processed != 1 || res.Procs[0].Busy != 10 {
		t.Errorf("proc stats = %+v", res.Procs[0])
	}
}

func TestSequentialTasksOneProc(t *testing.T) {
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     mkTasks(100, 50, 150),
		Scheduler: sched.EF{},
	})
	if res.Completed != 3 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// (100+50+150)/10 = 30 seconds of work, strictly serialised.
	if res.Makespan != 30 {
		t.Errorf("makespan = %v, want 30", res.Makespan)
	}
}

func TestCommCostsExtendMakespanAndCutEfficiency(t *testing.T) {
	// One proc, two tasks, 5s per transfer: makespan = 2*(5+10) = 30,
	// busy = 20, efficiency = 20/30.
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       fixedNet(1, 5),
		Tasks:     mkTasks(100, 100),
		Scheduler: sched.EF{},
	})
	if res.Makespan != 30 {
		t.Errorf("makespan = %v, want 30", res.Makespan)
	}
	if math.Abs(res.Efficiency-20.0/30.0) > 1e-9 {
		t.Errorf("efficiency = %v, want %v", res.Efficiency, 20.0/30.0)
	}
	if res.Procs[0].Comm != 10 {
		t.Errorf("comm time = %v, want 10", res.Procs[0].Comm)
	}
}

func TestParallelismAcrossProcs(t *testing.T) {
	// Two equal procs, two equal tasks: EF puts one on each.
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10, 10}),
		Net:       freeNet(2),
		Tasks:     mkTasks(100, 100),
		Scheduler: sched.EF{},
	})
	if res.Makespan != 10 {
		t.Errorf("makespan = %v, want 10 (parallel)", res.Makespan)
	}
	if math.Abs(res.Efficiency-1) > 1e-9 {
		t.Errorf("efficiency = %v", res.Efficiency)
	}
}

func TestExactlyOnceProcessing(t *testing.T) {
	tasks := workload.Generate(workload.Spec{
		N:     500,
		Sizes: workload.Uniform{Lo: 10, Hi: 1000},
	}, rng.New(3))
	completions := map[task.ID]int{}
	starts := map[task.ID]int{}
	res := Run(Config{
		Cluster:   cluster.NewHeterogeneous(10, 50, 500, rng.New(4)),
		Net:       fixedNet(10, 0.5),
		Tasks:     tasks,
		Scheduler: sched.MM{},
		Trace: func(ev TraceEvent) {
			switch ev.Kind {
			case TraceComplete:
				completions[ev.Task]++
			case TraceStart:
				starts[ev.Task]++
			}
		},
	})
	if res.Completed != 500 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if len(completions) != 500 {
		t.Fatalf("distinct completions = %d", len(completions))
	}
	for id, n := range completions {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
		if starts[id] != 1 {
			t.Errorf("task %d started %d times", id, starts[id])
		}
	}
}

func TestBusyPlusCommBoundedByMakespan(t *testing.T) {
	res := Run(Config{
		Cluster: cluster.NewHeterogeneous(8, 50, 500, rng.New(5)),
		Net:     fixedNet(8, 1),
		Tasks: workload.Generate(workload.Spec{
			N:     300,
			Sizes: workload.Normal{Mean: 1000, Variance: 9e5},
		}, rng.New(6)),
		Scheduler: sched.EF{},
	})
	if res.Completed != 300 {
		t.Fatalf("completed = %d", res.Completed)
	}
	for j, st := range res.Procs {
		if st.Busy+st.Comm > res.Makespan+1e-9 {
			t.Errorf("proc %d: busy %v + comm %v exceeds makespan %v", j, st.Busy, st.Comm, res.Makespan)
		}
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Errorf("efficiency = %v outside (0,1]", res.Efficiency)
	}
}

func TestEFBeatsRRonHeterogeneousCluster(t *testing.T) {
	tasks := workload.Generate(workload.Spec{
		N:     400,
		Sizes: workload.Uniform{Lo: 10, Hi: 1000},
	}, rng.New(7))
	run := func(s sched.Scheduler) units.Seconds {
		return Run(Config{
			Cluster:   cluster.NewHeterogeneous(10, 10, 1000, rng.New(8)),
			Net:       freeNet(10),
			Tasks:     tasks,
			Scheduler: s,
		}).Makespan
	}
	ef := run(sched.EF{})
	rr := run(&sched.RR{})
	if ef >= rr {
		t.Errorf("EF makespan %v not better than RR %v on heterogeneous cluster", ef, rr)
	}
}

func TestBatchInvocations(t *testing.T) {
	tasks := mkTasks(make([]units.MFlops, 0)...)
	for i := 0; i < 1000; i++ {
		tasks = append(tasks, task.Task{ID: task.ID(i), Size: 10})
	}
	res := Run(Config{
		Cluster:    cluster.New([]units.Rate{10, 10, 10}),
		Net:        freeNet(3),
		Tasks:      tasks,
		Scheduler:  sched.MM{},
		BatchSizer: sched.FixedBatch{Batch: sched.MM{}, Size: 100},
	})
	if res.Completed != 1000 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Invocations != 10 {
		t.Errorf("invocations = %d, want 10", res.Invocations)
	}
}

func TestDynamicArrivalsWakeIdleProcessors(t *testing.T) {
	// Two tasks arriving far apart: the processor idles in between.
	tasks := []task.Task{
		{ID: 0, Size: 10, Arrival: 0},
		{ID: 1, Size: 10, Arrival: 100},
	}
	var idles int
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     tasks,
		Scheduler: sched.EF{},
		Trace: func(ev TraceEvent) {
			if ev.Kind == TraceIdle {
				idles++
			}
		},
	})
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Task 0 done at t=1; task 1 arrives t=100, done t=101.
	if res.Makespan != 101 {
		t.Errorf("makespan = %v, want 101", res.Makespan)
	}
	if idles == 0 {
		t.Error("processor never reported idle despite the arrival gap")
	}
}

func TestFailureRecoveryReissuesTasks(t *testing.T) {
	// Proc 1 dies at t=5 mid-stream; with recovery enabled all tasks
	// must still complete on proc 0.
	clu := cluster.New([]units.Rate{10, 10}).WithAvailability(func(i int) cluster.AvailabilityModel {
		if i == 1 {
			return cluster.OffAfter{Cutoff: 5}
		}
		return cluster.Full{}
	})
	tasks := mkTasks(100, 100, 100, 100, 100, 100)
	res := Run(Config{
		Cluster:        clu,
		Net:            freeNet(2),
		Tasks:          tasks,
		Scheduler:      sched.EF{},
		ReissueTimeout: 20,
	})
	if res.Completed != len(tasks) {
		t.Fatalf("completed = %d of %d despite recovery", res.Completed, len(tasks))
	}
	if res.Reissued == 0 {
		t.Error("no tasks reissued")
	}
	if !res.Procs[1].Dead {
		t.Error("proc 1 not marked dead")
	}
	if res.Procs[0].Dead {
		t.Error("healthy proc marked dead")
	}
}

func TestWithoutRecoveryTasksStrand(t *testing.T) {
	clu := cluster.New([]units.Rate{10, 10}).WithAvailability(func(i int) cluster.AvailabilityModel {
		if i == 1 {
			return cluster.OffAfter{Cutoff: 5}
		}
		return cluster.Full{}
	})
	res := Run(Config{
		Cluster:   clu,
		Net:       freeNet(2),
		Tasks:     mkTasks(100, 100, 100, 100, 100, 100),
		Scheduler: sched.EF{},
	})
	if res.Completed >= 6 {
		t.Errorf("completed = %d, expected stranded tasks without recovery", res.Completed)
	}
}

func TestMaxTimeAborts(t *testing.T) {
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{1}),
		Net:       freeNet(1),
		Tasks:     mkTasks(1000, 1000, 1000), // 3000s of work
		Scheduler: sched.EF{},
		MaxTime:   1500,
	})
	if res.Completed >= 3 {
		t.Errorf("completed = %d, want abort before all 3", res.Completed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return Run(Config{
			Cluster: cluster.NewHeterogeneous(12, 50, 500, rng.New(10)),
			Net: network.New(12, network.Config{
				MeanCost: 2, LinkSpread: 0.3, Jitter: 0.2,
			}, rng.New(11)),
			Tasks: workload.Generate(workload.Spec{
				N:     400,
				Sizes: workload.Poisson{Mean: 100},
			}, rng.New(12)),
			Scheduler: sched.MM{},
		})
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Efficiency != b.Efficiency || a.Completed != b.Completed {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	good := Config{
		Cluster:   cluster.New([]units.Rate{1}),
		Net:       freeNet(1),
		Scheduler: sched.EF{},
	}
	cases := map[string]Config{
		"nil cluster":      {Net: freeNet(1), Scheduler: sched.EF{}},
		"nil net":          {Cluster: good.Cluster, Scheduler: sched.EF{}},
		"link mismatch":    {Cluster: cluster.New([]units.Rate{1, 2}), Net: freeNet(1), Scheduler: sched.EF{}},
		"wrong sched type": {Cluster: good.Cluster, Net: freeNet(1), Scheduler: badScheduler{}},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }

// lossyScheduler drops tasks — the simulator must detect this.
type lossyScheduler struct{}

func (lossyScheduler) Name() string { return "lossy" }
func (lossyScheduler) ScheduleBatch(batch []task.Task, s sched.State) (sched.Assignment, units.Seconds) {
	return sched.NewAssignment(s.M()), 0 // loses every task
}

func TestPanicsOnLossyScheduler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lossy scheduler not detected")
		}
	}()
	Run(Config{
		Cluster:   cluster.New([]units.Rate{1}),
		Net:       freeNet(1),
		Tasks:     mkTasks(10),
		Scheduler: lossyScheduler{},
	})
}

func TestEmptyWorkload(t *testing.T) {
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Scheduler: sched.EF{},
	})
	if res.Completed != 0 || res.Makespan != 0 || res.Efficiency != 0 {
		t.Errorf("empty workload: %+v", res)
	}
}

func TestVariableAvailabilitySlowsCompletion(t *testing.T) {
	tasks := workload.Generate(workload.Spec{
		N:     100,
		Sizes: workload.Constant{Size: 100},
	}, rng.New(13))
	base := cluster.New([]units.Rate{50, 50, 50, 50})
	full := Run(Config{
		Cluster: base, Net: freeNet(4), Tasks: tasks, Scheduler: sched.EF{},
	})
	halved := Run(Config{
		Cluster: base.WithAvailability(func(i int) cluster.AvailabilityModel {
			tr, err := cluster.NewTrace([]units.Seconds{0}, []float64{0.5})
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}),
		Net: freeNet(4), Tasks: tasks, Scheduler: sched.EF{},
	})
	if full.Completed != 100 || halved.Completed != 100 {
		t.Fatalf("completions: %d, %d", full.Completed, halved.Completed)
	}
	ratio := float64(halved.Makespan) / float64(full.Makespan)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("half availability should double makespan; ratio = %v", ratio)
	}
}

func TestRateObservationFeedsScheduler(t *testing.T) {
	// A processor advertising rate 100 but actually delivering 10 (90%
	// stolen by other users): after enough completions the scheduler's
	// believed rate must approach the effective one.
	tr, err := cluster.NewTrace([]units.Seconds{0}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	clu := cluster.New([]units.Rate{100}).WithAvailability(func(int) cluster.AvailabilityModel { return tr })
	var lastRate units.Rate
	probe := probeScheduler{onAssign: func(s sched.State) { lastRate = s.Rate(0) }}
	// Spread arrivals so later Assign calls happen after completions —
	// each task takes 10s at the effective rate.
	tasks := mkTasks(100, 100, 100, 100, 100, 100, 100, 100)
	for i := range tasks {
		tasks[i].Arrival = units.Seconds(50 * i)
	}
	res := Run(Config{
		Cluster:   clu,
		Net:       freeNet(1),
		Tasks:     tasks,
		Scheduler: probe,
		RateNu:    0.5,
	})
	if res.Completed != 8 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if lastRate > 20 {
		t.Errorf("scheduler still believes rate %v, want ~10 after observations", lastRate)
	}
}

// probeScheduler is an immediate scheduler that records the state it sees.
type probeScheduler struct {
	onAssign func(sched.State)
}

func (probeScheduler) Name() string { return "probe" }
func (p probeScheduler) Assign(t task.Task, s sched.State) int {
	if p.onAssign != nil {
		p.onAssign(s)
	}
	return 0
}
