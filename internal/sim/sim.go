// Package sim is the discrete-event simulator of the distributed system
// described in §3 of the paper: heterogeneous processors pull tasks from
// per-processor queues held at a dedicated scheduling processor, paying
// a sampled communication cost per transfer, processing at a rate that
// may vary over time, and reporting completions back.
//
// The simulator measures the paper's two metrics (§4): makespan — "the
// total execution time of a schedule" — and efficiency — "the percentage
// of the time that processors actually spend processing rather than
// communicating or idling".
//
// Scheduling decisions are made strictly through the sched.State view:
// smoothed observed rates, outstanding loads and smoothed communication
// estimates. The simulator's hidden truth (true link means, true
// availability) is never exposed to schedulers.
package sim

import (
	"fmt"

	"pnsched/internal/cluster"
	"pnsched/internal/eventq"
	"pnsched/internal/network"
	"pnsched/internal/observe"
	"pnsched/internal/sched"
	"pnsched/internal/smoothing"
	"pnsched/internal/task"
	"pnsched/internal/units"
)

// DefaultRateNu is the smoothing factor applied to observed
// per-task processing rates.
const DefaultRateNu = 0.3

// TraceKind labels a trace event.
type TraceKind string

// Trace event kinds, in rough lifecycle order.
const (
	TraceArrival  TraceKind = "arrival"
	TraceInvoke   TraceKind = "invoke"
	TraceAssign   TraceKind = "assign"
	TraceStart    TraceKind = "start"
	TraceComplete TraceKind = "complete"
	TraceIdle     TraceKind = "idle"
	TraceReissue  TraceKind = "reissue"
)

// TraceEvent is delivered to Config.Trace observers.
type TraceEvent struct {
	Time units.Seconds
	Kind TraceKind
	Proc int     // -1 when not processor-specific
	Task task.ID // task.None when not task-specific
}

// Config describes one simulation run.
type Config struct {
	Cluster   *cluster.Cluster
	Net       *network.Network
	Tasks     []task.Task
	Scheduler sched.Scheduler // must implement sched.Immediate or sched.Batch

	// BatchSizer overrides batch sizing. If nil and the scheduler
	// implements sched.BatchSizer, the scheduler sizes its own batches;
	// otherwise batches default to sched.DefaultBatchSize.
	BatchSizer sched.BatchSizer

	// RateNu is the smoothing factor for observed processing rates
	// (DefaultRateNu if zero).
	RateNu float64

	// CommPrior is what schedulers believe a transfer costs before any
	// observation exists for a link (default 0).
	CommPrior units.Seconds

	// ReissueTimeout, when positive, enables failure recovery: a task
	// whose processor can never finish it (permanent outage) is pulled
	// back after this many simulated seconds, the processor is marked
	// dead (believed rate 0), and the task — plus everything queued
	// behind it — is rescheduled.
	ReissueTimeout units.Seconds

	// MaxTime aborts the simulation at this simulated instant
	// (default: no limit). Aborted runs report Completed < len(Tasks).
	MaxTime units.Seconds

	// Trace, when non-nil, observes every simulation event.
	Trace func(TraceEvent)

	// Observer, when non-nil, receives the typed public-API events the
	// simulator emits: OnBatchDecided after every committed batch
	// decision and OnDispatch when a task starts its transfer to a
	// processor. GA-level events (generation best, migration, budget
	// stop) come from the scheduler itself via core.Config.Observer —
	// point both at the same Observer to see the full stream.
	Observer observe.Observer

	// Interrupt, when non-nil, is polled before every event; returning
	// true aborts the run at the current simulated instant (Completed
	// then reports fewer than len(Tasks)). The public pnsched.Run API
	// uses it to honour context cancellation.
	Interrupt func() bool

	// Timeline, when non-nil, is filled with per-processor comm and
	// busy segments for post-run analysis (utilisation, Gantt).
	Timeline *Timeline
}

// ProcStat summarises one processor's activity.
type ProcStat struct {
	Busy      units.Seconds // time spent processing
	Comm      units.Seconds // time spent in task transfers
	Processed int           // tasks completed
	Dead      bool          // marked failed by reissue recovery
}

// Result reports a finished simulation.
type Result struct {
	Makespan      units.Seconds // completion time of the last task
	Efficiency    float64       // Σ busy / (M × makespan)
	Completed     int
	Reissued      int // tasks recovered from dead processors
	Procs         []ProcStat
	SchedulerBusy units.Seconds // total simulated scheduler compute time
	Invocations   int           // batch-scheduler invocations
}

// event payloads
type (
	evArrival struct{ t task.Task }
	evReady   struct{ proc int }
	evInvoke  struct{}
	evAssign  struct{ a sched.Assignment }
	evReissue struct{ proc int }
)

type simulator struct {
	cfg   Config
	m     int
	queue eventq.Queue
	now   units.Seconds

	unscheduled *task.Queue
	procQueues  []*task.Queue
	pending     []units.MFlops
	inflight    []*task.Task // task currently on the wire/being processed
	idle        []bool
	dead        []bool
	rateEst     []*smoothing.Smoother

	schedBusy     bool
	invokePending bool
	immediate     sched.Immediate
	batch         sched.Batch
	sizer         sched.BatchSizer

	stats       []ProcStat
	completed   int
	reissued    int
	makespan    units.Seconds
	schedTime   units.Seconds
	invocations int
}

// view adapts the simulator to sched.State.
type view struct{ s *simulator }

func (v view) M() int { return v.s.m }

func (v view) Rate(j int) units.Rate {
	if v.s.dead[j] {
		return 0
	}
	return units.Rate(v.s.rateEst[j].ValueOr(float64(v.s.cfg.Cluster.Procs[j].BaseRate)))
}

func (v view) PendingLoad(j int) units.MFlops { return v.s.pending[j] }

func (v view) CommEstimate(j int) units.Seconds {
	return v.s.cfg.Net.EstimatedCost(j, v.s.cfg.CommPrior)
}

func (v view) Now() units.Seconds { return v.s.now }

func (v view) TimeUntilFirstIdle() units.Seconds {
	anyWork := false
	best := units.Inf()
	for j := 0; j < v.s.m; j++ {
		if v.s.dead[j] {
			continue
		}
		if v.s.pending[j] > 0 {
			anyWork = true
			if t := v.s.pending[j].TimeOn(v.Rate(j)); t < best {
				best = t
			}
		}
	}
	if !anyWork {
		return units.Inf()
	}
	// A live processor already starving makes the budget zero.
	for j := 0; j < v.s.m; j++ {
		if !v.s.dead[j] && v.s.idle[j] && v.s.procQueues[j].Empty() {
			return 0
		}
	}
	return best
}

// Run executes the simulation to completion (or MaxTime) and returns the
// metrics. It panics on configuration errors: a nil cluster or network,
// mismatched link counts, or a scheduler implementing neither mode.
func Run(cfg Config) Result {
	if cfg.Cluster == nil || cfg.Cluster.M() == 0 {
		panic("sim: missing cluster")
	}
	if cfg.Net == nil {
		panic("sim: missing network")
	}
	if cfg.Net.M() != cfg.Cluster.M() {
		panic(fmt.Sprintf("sim: %d links for %d processors", cfg.Net.M(), cfg.Cluster.M()))
	}
	if cfg.RateNu == 0 {
		cfg.RateNu = DefaultRateNu
	}
	if cfg.Timeline != nil {
		cfg.Timeline.Procs = make([][]Segment, cfg.Cluster.M())
		cfg.Timeline.Makespan = 0
	}

	s := &simulator{
		cfg:         cfg,
		m:           cfg.Cluster.M(),
		unscheduled: task.NewQueue(len(cfg.Tasks)),
	}
	s.procQueues = make([]*task.Queue, s.m)
	s.pending = make([]units.MFlops, s.m)
	s.inflight = make([]*task.Task, s.m)
	s.idle = make([]bool, s.m)
	s.dead = make([]bool, s.m)
	s.rateEst = make([]*smoothing.Smoother, s.m)
	s.stats = make([]ProcStat, s.m)
	for j := 0; j < s.m; j++ {
		s.procQueues[j] = task.NewQueue(8)
		s.idle[j] = true
		s.rateEst[j] = smoothing.New(cfg.RateNu)
	}

	switch sc := cfg.Scheduler.(type) {
	case sched.Immediate:
		s.immediate = sc
	case sched.Batch:
		s.batch = sc
	default:
		panic(fmt.Sprintf("sim: scheduler %T implements neither Immediate nor Batch", cfg.Scheduler))
	}
	if s.batch != nil {
		s.sizer = cfg.BatchSizer
		if s.sizer == nil {
			if bs, ok := cfg.Scheduler.(sched.BatchSizer); ok {
				s.sizer = bs
			} else {
				s.sizer = sched.FixedBatch{Batch: s.batch, Size: sched.DefaultBatchSize}
			}
		}
	}

	for _, t := range cfg.Tasks {
		s.queue.Push(t.Arrival, evArrival{t: t})
	}

	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = units.Inf()
	}

	for s.completed < len(cfg.Tasks) {
		if cfg.Interrupt != nil && cfg.Interrupt() {
			break
		}
		item, ok := s.queue.Pop()
		if !ok || item.Time > maxTime {
			break
		}
		s.now = item.Time
		switch ev := item.Payload.(type) {
		case evArrival:
			s.onArrival(ev.t)
		case evReady:
			s.onReady(ev.proc)
		case evInvoke:
			s.onInvoke()
		case evAssign:
			s.onAssign(ev.a)
		case evComplete:
			s.onComplete(ev)
		case evReissue:
			s.onReissue(ev.proc)
		}
	}

	if cfg.Timeline != nil {
		cfg.Timeline.Makespan = s.makespan
	}
	res := Result{
		Makespan:      s.makespan,
		Completed:     s.completed,
		Reissued:      s.reissued,
		Procs:         s.stats,
		SchedulerBusy: s.schedTime,
		Invocations:   s.invocations,
	}
	if s.makespan > 0 {
		var busy units.Seconds
		for _, st := range s.stats {
			busy += st.Busy
		}
		res.Efficiency = float64(busy) / (float64(s.m) * float64(s.makespan))
	}
	return res
}

func (s *simulator) trace(kind TraceKind, proc int, id task.ID) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Time: s.now, Kind: kind, Proc: proc, Task: id})
	}
}

func (s *simulator) onArrival(t task.Task) {
	s.trace(TraceArrival, -1, t.ID)
	if s.immediate != nil {
		j := s.immediate.Assign(t, view{s})
		s.enqueueOnProc(j, t)
		return
	}
	s.unscheduled.Push(t)
	s.requestInvoke()
}

// requestInvoke schedules a scheduler invocation check after all events
// at the current instant have been processed, so that simultaneous
// arrivals form one batch rather than the first arrival being scheduled
// alone.
func (s *simulator) requestInvoke() {
	if s.batch == nil || s.invokePending {
		return
	}
	s.invokePending = true
	s.queue.Push(s.now, evInvoke{})
}

// enqueueOnProc appends a task to processor j's scheduler-side queue and
// wakes the processor if it is starving.
func (s *simulator) enqueueOnProc(j int, t task.Task) {
	s.procQueues[j].Push(t)
	s.pending[j] += t.Size
	if s.idle[j] && !s.dead[j] {
		s.idle[j] = false
		s.queue.Push(s.now, evReady{proc: j})
	}
}

func (s *simulator) onInvoke() {
	s.invokePending = false
	if s.batch == nil || s.schedBusy || s.unscheduled.Empty() {
		return
	}
	v := view{s}
	h := s.sizer.NextBatchSize(s.unscheduled.Len(), v)
	if h < 1 {
		h = 1
	}
	batch := s.unscheduled.PopN(h)
	s.trace(TraceInvoke, -1, task.None)
	a, cost := s.batch.ScheduleBatch(batch, v)
	if got := a.Tasks(); got != len(batch) {
		panic(fmt.Sprintf("sim: scheduler %s returned %d of %d tasks", s.batch.Name(), got, len(batch)))
	}
	if cost < 0 {
		panic(fmt.Sprintf("sim: scheduler %s reported negative cost %v", s.batch.Name(), cost))
	}
	s.invocations++
	s.schedTime += cost
	s.schedBusy = true
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnBatchDecided(observe.BatchDecision{
			Invocation: s.invocations,
			Scheduler:  s.batch.Name(),
			Tasks:      len(batch),
			Procs:      s.m,
			Cost:       cost,
			At:         s.now,
		})
	}
	s.queue.Push(s.now+cost, evAssign{a: a})
}

func (s *simulator) onAssign(a sched.Assignment) {
	s.trace(TraceAssign, -1, task.None)
	for j, q := range a {
		for _, t := range q {
			s.enqueueOnProc(j, t)
		}
	}
	s.schedBusy = false
	s.requestInvoke()
}

func (s *simulator) onReady(j int) {
	if s.dead[j] {
		return
	}
	t, ok := s.procQueues[j].Pop()
	if !ok {
		s.idle[j] = true
		s.trace(TraceIdle, j, task.None)
		// A starving processor is the paper's cue to produce the next
		// schedule quickly; give the scheduler a chance immediately.
		s.requestInvoke()
		return
	}
	s.idle[j] = false
	s.inflight[j] = &t

	// Transfer the task over the link (request + delivery), observing
	// the cost into the scheduler-visible estimator.
	comm := s.cfg.Net.Transfer(j)
	s.stats[j].Comm += comm
	start := s.now + comm
	s.trace(TraceStart, j, t.ID)
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnDispatch(observe.Dispatch{Proc: j, Task: t.ID, At: s.now})
	}
	if s.cfg.Timeline != nil {
		s.cfg.Timeline.record(j, Segment{Start: s.now, End: start, Kind: SegComm, Task: t.ID})
	}

	finish := s.cfg.Cluster.Procs[j].CompletionTime(start, t.Size)
	if finish.IsInf() {
		// Permanent outage mid-assignment: without recovery the task is
		// stranded (the paper's switched-off machine); with recovery a
		// reissue fires after the timeout.
		if s.cfg.ReissueTimeout > 0 {
			s.queue.Push(s.now+s.cfg.ReissueTimeout, evReissue{proc: j})
		}
		return
	}
	s.queue.Push(finish, evComplete{proc: j, start: start, finish: finish})
}

// evComplete carries completion bookkeeping through the event queue.
type evComplete struct {
	proc          int
	start, finish units.Seconds
}

func (s *simulator) onComplete(e evComplete) {
	j := e.proc
	t := s.inflight[j]
	if t == nil || s.dead[j] {
		return
	}
	s.inflight[j] = nil
	procTime := e.finish - e.start
	s.stats[j].Busy += procTime
	s.stats[j].Processed++
	s.pending[j] -= t.Size
	if s.pending[j] < 0 {
		s.pending[j] = 0
	}
	s.completed++
	if e.finish > s.makespan {
		s.makespan = e.finish
	}
	// Observe the effective processing rate for the scheduler's view.
	if procTime > 0 {
		s.rateEst[j].Observe(float64(t.Size) / float64(procTime))
	}
	if s.cfg.Timeline != nil {
		s.cfg.Timeline.record(j, Segment{Start: e.start, End: e.finish, Kind: SegBusy, Task: t.ID})
	}
	s.trace(TraceComplete, j, t.ID)
	// The processor immediately requests its next task.
	s.queue.Push(e.finish, evReady{proc: j})
}

func (s *simulator) onReissue(j int) {
	if s.dead[j] {
		return
	}
	s.dead[j] = true
	s.stats[j].Dead = true
	s.trace(TraceReissue, j, task.None)

	// Recover the in-flight task and everything queued behind it.
	var recovered []task.Task
	if t := s.inflight[j]; t != nil {
		recovered = append(recovered, *t)
		s.inflight[j] = nil
	}
	recovered = append(recovered, s.procQueues[j].PopN(s.procQueues[j].Len())...)
	s.pending[j] = 0
	s.reissued += len(recovered)

	for _, t := range recovered {
		if s.immediate != nil {
			k := s.immediate.Assign(t, view{s})
			s.enqueueOnProc(k, t)
		} else {
			s.unscheduled.Push(t)
		}
	}
	s.requestInvoke()
}
