package sim

import (
	"testing"
	"testing/quick"

	"pnsched/internal/cluster"
	"pnsched/internal/network"
	"pnsched/internal/rng"
	"pnsched/internal/sched"
	"pnsched/internal/task"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

// randomConfig draws a random-but-valid simulation configuration.
func randomConfig(seed uint64) (Config, int) {
	r := rng.New(seed)
	m := r.Intn(12) + 1
	n := r.Intn(200) + 1

	var clu *cluster.Cluster
	base := cluster.NewHeterogeneous(m, units.Rate(r.Uniform(5, 50)), units.Rate(r.Uniform(60, 500)), r.Stream(1))
	switch r.Intn(3) {
	case 0:
		clu = base
	case 1:
		walks := r.Stream(2)
		clu = base.WithAvailability(func(i int) cluster.AvailabilityModel {
			return cluster.NewRandomWalk(units.Seconds(r.Uniform(5, 50)), 0.3, 0.2, 0.9, walks.Stream(uint64(i)))
		})
	default:
		clu = base.WithAvailability(func(i int) cluster.AvailabilityModel {
			return cluster.Sinusoidal{Mean: 0.7, Amplitude: 0.25, Period: units.Seconds(r.Uniform(50, 400)), Phase: float64(i)}
		})
	}

	net := network.New(m, network.Config{
		MeanCost:   units.Seconds(r.Uniform(0, 5)),
		LinkSpread: r.Uniform(0, 0.5),
		Jitter:     r.Uniform(0, 0.5),
	}, r.Stream(3))

	var dist workload.SizeDistribution
	switch r.Intn(3) {
	case 0:
		dist = workload.Uniform{Lo: 10, Hi: units.MFlops(r.Uniform(100, 5000))}
	case 1:
		dist = workload.Normal{Mean: 1000, Variance: 9e5}
	default:
		dist = workload.Poisson{Mean: units.MFlops(r.Uniform(10, 200))}
	}
	spec := workload.Spec{N: n, Sizes: dist}
	if r.Bool(0.4) {
		spec.Arrival = workload.PoissonArrivals{MeanGap: units.Seconds(r.Uniform(0.01, 1))}
	}
	tasks := workload.Generate(spec, r.Stream(4))

	var s sched.Scheduler
	switch r.Intn(6) {
	case 0:
		s = sched.EF{}
	case 1:
		s = sched.LL{}
	case 2:
		s = &sched.RR{}
	case 3:
		s = sched.MM{}
	case 4:
		s = sched.MX{}
	default:
		s = sched.Sufferage{}
	}
	return Config{Cluster: clu, Net: net, Tasks: tasks, Scheduler: s}, n
}

// TestSimulatorInvariantsUnderRandomConfigs drives the simulator
// through random valid configurations and asserts the global
// invariants: every task completes exactly once, busy+comm never
// exceeds the makespan on any processor, efficiency is in (0,1], and
// the makespan respects the total-work lower bound when the cluster is
// fully available and links are free.
func TestSimulatorInvariantsUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, n := randomConfig(seed)
		completions := map[task.ID]int{}
		cfg.Trace = func(ev TraceEvent) {
			if ev.Kind == TraceComplete {
				completions[ev.Task]++
			}
		}
		res := Run(cfg)
		if res.Completed != n || len(completions) != n {
			return false
		}
		for _, c := range completions {
			if c != 1 {
				return false
			}
		}
		if res.Efficiency <= 0 || res.Efficiency > 1 {
			return false
		}
		for _, st := range res.Procs {
			if st.Busy < 0 || st.Comm < 0 {
				return false
			}
			if st.Busy+st.Comm > res.Makespan+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorTimelineInvariantUnderRandomConfigs repeats the random
// sweep with timelines attached: they must always validate.
func TestSimulatorTimelineInvariantUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, n := randomConfig(seed)
		tl := NewTimeline(0)
		cfg.Timeline = tl
		res := Run(cfg)
		if res.Completed != n {
			return false
		}
		return tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
