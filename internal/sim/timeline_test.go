package sim

import (
	"math"
	"strings"
	"testing"

	"pnsched/internal/cluster"
	"pnsched/internal/network"
	"pnsched/internal/rng"
	"pnsched/internal/sched"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

func TestTimelineMatchesStats(t *testing.T) {
	tl := NewTimeline(0) // re-initialised by Run
	res := Run(Config{
		Cluster: cluster.NewHeterogeneous(6, 20, 200, rng.New(1)),
		Net:     network.New(6, network.Config{MeanCost: 2, LinkSpread: 0.3, Jitter: 0.2}, rng.New(2)),
		Tasks: workload.Generate(workload.Spec{
			N:     200,
			Sizes: workload.Uniform{Lo: 10, Hi: 1000},
		}, rng.New(3)),
		Scheduler: sched.EF{},
		Timeline:  tl,
	})
	if res.Completed != 200 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
	if tl.Makespan != res.Makespan {
		t.Errorf("timeline makespan %v != result %v", tl.Makespan, res.Makespan)
	}
	// Segment sums must exactly match the simulator's accounting.
	for j := range tl.Procs {
		var busy, comm units.Seconds
		for _, s := range tl.Procs[j] {
			switch s.Kind {
			case SegBusy:
				busy += s.End - s.Start
			case SegComm:
				comm += s.End - s.Start
			}
		}
		if math.Abs(float64(busy-res.Procs[j].Busy)) > 1e-6 {
			t.Errorf("proc %d busy: timeline %v vs stats %v", j, busy, res.Procs[j].Busy)
		}
		if math.Abs(float64(comm-res.Procs[j].Comm)) > 1e-6 {
			t.Errorf("proc %d comm: timeline %v vs stats %v", j, comm, res.Procs[j].Comm)
		}
	}
}

func TestTimelineUtilization(t *testing.T) {
	tl := NewTimeline(1)
	tl.Makespan = 10
	tl.Procs[0] = []Segment{
		{Start: 0, End: 2, Kind: SegComm},
		{Start: 2, End: 8, Kind: SegBusy},
	}
	busy, comm, idle := tl.Utilization(0)
	if busy != 0.6 || comm != 0.2 || math.Abs(idle-0.2) > 1e-12 {
		t.Errorf("utilization = %v %v %v", busy, comm, idle)
	}
}

func TestTimelineUtilizationEmpty(t *testing.T) {
	tl := NewTimeline(1)
	busy, comm, idle := tl.Utilization(0)
	if busy != 0 || comm != 0 || idle != 0 {
		t.Errorf("empty utilization = %v %v %v", busy, comm, idle)
	}
}

func TestTimelineValidateCatchesOverlap(t *testing.T) {
	tl := NewTimeline(1)
	tl.Makespan = 10
	tl.Procs[0] = []Segment{
		{Start: 0, End: 5, Kind: SegBusy},
		{Start: 4, End: 6, Kind: SegBusy}, // overlaps
	}
	if err := tl.Validate(); err == nil {
		t.Error("overlapping segments passed validation")
	}
	tl.Procs[0] = []Segment{{Start: 3, End: 2, Kind: SegBusy}}
	if err := tl.Validate(); err == nil {
		t.Error("inverted segment passed validation")
	}
	tl.Procs[0] = []Segment{{Start: 5, End: 20, Kind: SegBusy}}
	if err := tl.Validate(); err == nil {
		t.Error("segment past makespan passed validation")
	}
}

func TestGanttRendering(t *testing.T) {
	tl := NewTimeline(2)
	tl.Makespan = 10
	tl.Procs[0] = []Segment{
		{Start: 0, End: 1, Kind: SegComm, Task: 0},
		{Start: 1, End: 9, Kind: SegBusy, Task: 0},
	}
	tl.Procs[1] = []Segment{{Start: 0, End: 5, Kind: SegBusy, Task: 1}}
	var sb strings.Builder
	tl.Gantt(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("gantt missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "~") || !strings.Contains(out, ".") {
		t.Errorf("gantt missing activity glyphs:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	tl := NewTimeline(1)
	var sb strings.Builder
	tl.Gantt(&sb, 40)
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty gantt output = %q", sb.String())
	}
}

func TestSegmentKindString(t *testing.T) {
	if SegBusy.String() != "busy" || SegComm.String() != "comm" {
		t.Error("segment kind strings wrong")
	}
	if SegmentKind(9).String() == "" {
		t.Error("unknown kind must stringify")
	}
}

// Every scheduler must produce a valid, stats-consistent timeline.
func TestTimelineValidAcrossSchedulers(t *testing.T) {
	tasks := workload.Generate(workload.Spec{
		N:     100,
		Sizes: workload.Poisson{Mean: 100},
	}, rng.New(4))
	for _, s := range []sched.Scheduler{sched.EF{}, sched.LL{}, &sched.RR{}, sched.MM{}, sched.MX{}, sched.Sufferage{}, sched.MET{}, sched.OLB{}, sched.KPB{}} {
		tl := NewTimeline(0)
		res := Run(Config{
			Cluster:   cluster.NewHeterogeneous(5, 20, 200, rng.New(5)),
			Net:       network.New(5, network.Config{MeanCost: 1, Jitter: 0.2}, rng.New(6)),
			Tasks:     tasks,
			Scheduler: s,
			Timeline:  tl,
		})
		if res.Completed != 100 {
			t.Errorf("%s completed %d", s.Name(), res.Completed)
		}
		if err := tl.Validate(); err != nil {
			t.Errorf("%s produced invalid timeline: %v", s.Name(), err)
		}
	}
}
