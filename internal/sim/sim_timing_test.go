package sim

import (
	"testing"

	"pnsched/internal/cluster"
	"pnsched/internal/sched"
	"pnsched/internal/task"
	"pnsched/internal/units"
)

// slowScheduler is a batch scheduler that charges a fixed compute cost
// per invocation, for testing that scheduler time delays assignments.
type slowScheduler struct {
	cost units.Seconds
}

func (slowScheduler) Name() string { return "slow" }

func (s slowScheduler) ScheduleBatch(batch []task.Task, st sched.State) (sched.Assignment, units.Seconds) {
	a := sched.NewAssignment(st.M())
	for i, t := range batch {
		a[i%st.M()] = append(a[i%st.M()], t)
	}
	return a, s.cost
}

func TestSchedulerCostDelaysExecution(t *testing.T) {
	// One task, one proc, scheduler takes 5s to think: the task cannot
	// start before t=5, so makespan = 5 + 100/10 = 15.
	res := Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     mkTasks(100),
		Scheduler: slowScheduler{cost: 5},
	})
	if res.Makespan != 15 {
		t.Errorf("makespan = %v, want 15 (scheduler thinking time)", res.Makespan)
	}
	if res.SchedulerBusy != 5 {
		t.Errorf("scheduler busy = %v, want 5", res.SchedulerBusy)
	}
}

func TestSchedulerCostAccumulatesAcrossBatches(t *testing.T) {
	tasks := mkTasks(10, 10, 10, 10)
	res := Run(Config{
		Cluster:    cluster.New([]units.Rate{10}),
		Net:        freeNet(1),
		Tasks:      tasks,
		Scheduler:  slowScheduler{cost: 2},
		BatchSizer: fixedSizer{size: 1}, // four invocations
	})
	if res.Invocations != 4 {
		t.Fatalf("invocations = %d, want 4", res.Invocations)
	}
	if res.SchedulerBusy != 8 {
		t.Errorf("scheduler busy = %v, want 8", res.SchedulerBusy)
	}
	if res.Completed != 4 {
		t.Errorf("completed = %d", res.Completed)
	}
}

type fixedSizer struct{ size int }

func (f fixedSizer) NextBatchSize(queued int, _ sched.State) int {
	if f.size > queued {
		return queued
	}
	return f.size
}

// budgetProbe records the TimeUntilFirstIdle each invocation sees.
type budgetProbe struct {
	inner   sched.Batch
	budgets *[]units.Seconds
}

func (b budgetProbe) Name() string { return "probe" }

func (b budgetProbe) ScheduleBatch(batch []task.Task, st sched.State) (sched.Assignment, units.Seconds) {
	*b.budgets = append(*b.budgets, st.TimeUntilFirstIdle())
	return b.inner.ScheduleBatch(batch, st)
}

func TestTimeUntilFirstIdleSemantics(t *testing.T) {
	var budgets []units.Seconds
	tasks := mkTasks(100, 100, 100, 100, 100, 100)
	res := Run(Config{
		Cluster:    cluster.New([]units.Rate{10, 10}),
		Net:        freeNet(2),
		Tasks:      tasks,
		Scheduler:  budgetProbe{inner: sched.MM{}, budgets: &budgets},
		BatchSizer: fixedSizer{size: 2},
	})
	if res.Completed != 6 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if len(budgets) < 2 {
		t.Fatalf("invocations = %d", len(budgets))
	}
	// First invocation: nothing queued anywhere → infinite budget.
	if !budgets[0].IsInf() {
		t.Errorf("first budget = %v, want Inf", budgets[0])
	}
	// Subsequent invocations: processors have work → finite budget.
	finite := false
	for _, b := range budgets[1:] {
		if !b.IsInf() {
			finite = true
			if b < 0 {
				t.Errorf("negative budget %v", b)
			}
		}
	}
	if !finite {
		t.Error("no finite budget ever observed")
	}
}

func TestCommPriorVisibleBeforeTraffic(t *testing.T) {
	var seen []units.Seconds
	probe := commProbe{seen: &seen}
	Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     mkTasks(10),
		Scheduler: probe,
		CommPrior: 7,
	})
	if len(seen) == 0 || seen[0] != 7 {
		t.Errorf("comm prior = %v, want first observation 7", seen)
	}
}

type commProbe struct{ seen *[]units.Seconds }

func (commProbe) Name() string { return "commprobe" }
func (p commProbe) Assign(tk task.Task, s sched.State) int {
	*p.seen = append(*p.seen, s.CommEstimate(0))
	return 0
}

func TestTraceEventOrdering(t *testing.T) {
	var kinds []TraceKind
	Run(Config{
		Cluster:   cluster.New([]units.Rate{10}),
		Net:       freeNet(1),
		Tasks:     mkTasks(50),
		Scheduler: sched.EF{},
		Trace:     func(ev TraceEvent) { kinds = append(kinds, ev.Kind) },
	})
	if kinds[0] != TraceArrival {
		t.Errorf("first event = %v, want arrival", kinds[0])
	}
	// A start must precede its completion; with one task that is the
	// global ordering of those kinds.
	var started bool
	for _, k := range kinds {
		if k == TraceStart {
			started = true
		}
		if k == TraceComplete && !started {
			t.Fatal("completion before any start")
		}
	}
}
