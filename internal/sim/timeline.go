package sim

import (
	"fmt"
	"io"
	"strings"

	"pnsched/internal/task"
	"pnsched/internal/units"
)

// SegmentKind labels a timeline segment.
type SegmentKind uint8

// Segment kinds.
const (
	// SegComm is time spent transferring a task over the link.
	SegComm SegmentKind = iota
	// SegBusy is time spent processing a task.
	SegBusy
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case SegComm:
		return "comm"
	case SegBusy:
		return "busy"
	default:
		return fmt.Sprintf("SegmentKind(%d)", uint8(k))
	}
}

// Segment is one contiguous activity interval on a processor. Gaps
// between segments are idle time.
type Segment struct {
	Start, End units.Seconds
	Kind       SegmentKind
	Task       task.ID
}

// Timeline records per-processor activity for one simulation run.
// Attach it via Config.Timeline; afterwards it holds every comm and
// busy interval in chronological order.
type Timeline struct {
	Procs    [][]Segment
	Makespan units.Seconds
}

// NewTimeline returns a timeline for m processors.
func NewTimeline(m int) *Timeline {
	return &Timeline{Procs: make([][]Segment, m)}
}

func (tl *Timeline) record(j int, s Segment) {
	if s.End > s.Start {
		tl.Procs[j] = append(tl.Procs[j], s)
	}
}

// Validate checks the structural invariants: per-processor segments
// are chronologically ordered, non-overlapping, and inside
// [0, Makespan]. The simulator must always produce a valid timeline;
// tests rely on this as an accounting cross-check.
func (tl *Timeline) Validate() error {
	for j, segs := range tl.Procs {
		var prev units.Seconds
		for i, s := range segs {
			if s.Start < 0 || s.End < s.Start {
				return fmt.Errorf("sim: proc %d segment %d malformed [%v,%v]", j, i, s.Start, s.End)
			}
			if s.Start < prev {
				return fmt.Errorf("sim: proc %d segment %d overlaps previous (starts %v before %v)", j, i, s.Start, prev)
			}
			if tl.Makespan > 0 && s.End > tl.Makespan+1e-9 {
				return fmt.Errorf("sim: proc %d segment %d ends %v after makespan %v", j, i, s.End, tl.Makespan)
			}
			prev = s.End
		}
	}
	return nil
}

// Utilization returns processor j's busy, comm and idle fractions of
// the makespan. With a zero makespan all fractions are zero.
func (tl *Timeline) Utilization(j int) (busy, comm, idle float64) {
	if tl.Makespan <= 0 {
		return 0, 0, 0
	}
	var b, c units.Seconds
	for _, s := range tl.Procs[j] {
		switch s.Kind {
		case SegBusy:
			b += s.End - s.Start
		case SegComm:
			c += s.End - s.Start
		}
	}
	total := float64(tl.Makespan)
	busy = float64(b) / total
	comm = float64(c) / total
	idle = 1 - busy - comm
	if idle < 0 {
		idle = 0
	}
	return busy, comm, idle
}

// Gantt renders the timeline as text, one row per processor:
// '#' processing, '~' communicating, '.' idle.
func (tl *Timeline) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	if tl.Makespan <= 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	fmt.Fprintf(w, "gantt: 0 .. %v  ('#' busy, '~' comm, '.' idle)\n", tl.Makespan)
	scale := float64(width) / float64(tl.Makespan)
	for j, segs := range tl.Procs {
		row := []byte(strings.Repeat(".", width))
		for _, s := range segs {
			lo := int(float64(s.Start) * scale)
			hi := int(float64(s.End) * scale)
			if hi >= width {
				hi = width - 1
			}
			ch := byte('#')
			if s.Kind == SegComm {
				ch = '~'
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = ch
			}
		}
		busy, comm, _ := tl.Utilization(j)
		fmt.Fprintf(w, "  P%-3d |%s| busy %4.0f%% comm %4.0f%%\n", j, row, busy*100, comm*100)
	}
}
