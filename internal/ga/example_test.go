package ga_test

import (
	"fmt"

	"pnsched/internal/ga"
	"pnsched/internal/rng"
)

// Cycle crossover partitions positions into cycles and copies alternate
// cycles from each parent, so every child position carries one of the
// two parent values at that position.
func ExampleCycleCrossover() {
	p1 := ga.Chromosome{1, 2, 3, 4, 5, 6, 7, 8}
	p2 := ga.Chromosome{8, 5, 2, 1, 3, 6, 4, 7}
	c1, c2 := ga.CycleCrossover(p1, p2)
	fmt.Println(c1)
	fmt.Println(c2)
	// Output:
	// [1 5 2 4 3 6 7 8]
	// [8 2 3 1 5 6 4 7]
}

// The engine evolves permutations against any Evaluator; here fitness
// counts adjacent in-order pairs, so evolution drives the permutation
// toward sortedness. Elitism guarantees the best individual never
// regresses, and the result is always a valid permutation.
func ExampleRun() {
	r := rng.New(42)
	eval := ga.EvaluatorFunc(func(c ga.Chromosome) float64 {
		score := 1.0
		for i := 1; i < len(c); i++ {
			if c[i] > c[i-1] {
				score++
			}
		}
		return score
	})
	initial := []ga.Chromosome{ga.Chromosome(r.Perm(8))}
	initialBest := eval.Fitness(initial[0])
	res := ga.Run(ga.Config{PopulationSize: 20, MaxGenerations: 400}, eval, initial, r)
	fmt.Println(res.BestFitness > initialBest, res.Reason, res.Best.ValidatePermutation() == nil)
	// Output: true max-generations true
}
