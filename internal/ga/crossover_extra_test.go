package ga

import (
	"testing"
	"testing/quick"

	"pnsched/internal/rng"
)

func randomParents(seed uint64, nRaw uint8) (Chromosome, Chromosome, int) {
	n := int(nRaw%30) + 2
	r := rng.New(seed)
	symbols := make([]int, n)
	for i := range symbols {
		symbols[i] = i - n/2 // include negatives like the delimiters
	}
	p1 := make(Chromosome, n)
	p2 := make(Chromosome, n)
	for i, v := range r.Perm(n) {
		p1[i] = symbols[v]
	}
	for i, v := range r.Perm(n) {
		p2[i] = symbols[v]
	}
	return p1, p2, n
}

// Both extra crossovers must preserve the symbol multiset.
func TestPMXProducesPermutations(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		p1, p2, _ := randomParents(seed, nRaw)
		r := rng.New(seed ^ 0xff)
		c1, c2 := PMX(p1, p2, r)
		return c1.IsPermutationOf(p1) && c2.IsPermutationOf(p1) &&
			c1.ValidatePermutation() == nil && c2.ValidatePermutation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOXProducesPermutations(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		p1, p2, _ := randomParents(seed, nRaw)
		r := rng.New(seed ^ 0xabcd)
		c1, c2 := OX(p1, p2, r)
		return c1.IsPermutationOf(p1) && c2.IsPermutationOf(p1) &&
			c1.ValidatePermutation() == nil && c2.ValidatePermutation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPMXKnownExample(t *testing.T) {
	// Classic Goldberg & Lingle example with segment [3,6]:
	// p1 = 1 2 3 4 5 6 7 8 9, p2 = 9 3 7 8 2 6 5 1 4
	p1 := Chromosome{1, 2, 3, 4, 5, 6, 7, 8, 9}
	p2 := Chromosome{9, 3, 7, 8, 2, 6, 5, 1, 4}
	c1 := pmxChild(p1, p2, 3, 6)
	// Segment from p2: positions 3-6 = 8 2 6 5. Mapping 8→4, 2→5, 6→6, 5→7.
	// Repairs: pos0 1→1; pos1 2 dup → chase 2→5→7; pos2 3→3;
	// pos7 8 dup → 8→4; pos8 9→9.
	want := Chromosome{1, 7, 3, 8, 2, 6, 5, 4, 9}
	if !c1.Equal(want) {
		t.Errorf("PMX child = %v, want %v", c1, want)
	}
}

func TestOXKnownExample(t *testing.T) {
	// Davis-style example with segment [3,5]:
	// p1 = 1 2 3 4 5 6 7 8 9 keeps 4 5 6 at positions 3-5.
	// p2 = 9 3 7 8 2 6 5 1 4; b-order from position 6: 5 1 4 9 3 7 8 2 6
	// minus {4,5,6} → 1 9 3 7 8 2 placed at positions 6,7,8,0,1,2.
	p1 := Chromosome{1, 2, 3, 4, 5, 6, 7, 8, 9}
	p2 := Chromosome{9, 3, 7, 8, 2, 6, 5, 1, 4}
	c1 := oxChild(p1, p2, 3, 5)
	want := Chromosome{7, 8, 2, 4, 5, 6, 1, 9, 3}
	if !c1.Equal(want) {
		t.Errorf("OX child = %v, want %v", c1, want)
	}
}

func TestExtraCrossoversIdenticalParents(t *testing.T) {
	p := Chromosome{3, 1, 4, 2, 0}
	r := rng.New(5)
	for name, cx := range map[string]Crossover{"PMX": PMX, "OX": OX, "CX": CX} {
		c1, c2 := cx(p, p, r)
		if !c1.Equal(p) || !c2.Equal(p) {
			t.Errorf("%s on identical parents produced %v, %v", name, c1, c2)
		}
	}
}

func TestExtraCrossoversTinyParents(t *testing.T) {
	r := rng.New(6)
	one := Chromosome{7}
	for name, cx := range map[string]Crossover{"PMX": PMX, "OX": OX} {
		c1, c2 := cx(one, one, r)
		if len(c1) != 1 || len(c2) != 1 || c1[0] != 7 {
			t.Errorf("%s single-gene = %v, %v", name, c1, c2)
		}
	}
}

func TestExtraCrossoversPanicOnLengthMismatch(t *testing.T) {
	r := rng.New(7)
	for name, cx := range map[string]Crossover{"PMX": PMX, "OX": OX} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s length mismatch did not panic", name)
				}
			}()
			cx(Chromosome{1, 2}, Chromosome{1, 2, 3}, r)
		}()
	}
}

func TestPMXSegmentFromOppositeParent(t *testing.T) {
	// The defining PMX property: inside the exchanged segment, child 1
	// carries p2's symbols at p2's positions.
	p1 := Chromosome{0, 1, 2, 3, 4, 5}
	p2 := Chromosome{5, 4, 3, 2, 1, 0}
	c1 := pmxChild(p1, p2, 1, 3)
	for i := 1; i <= 3; i++ {
		if c1[i] != p2[i] {
			t.Errorf("segment position %d = %d, want %d", i, c1[i], p2[i])
		}
	}
}

func TestOXSegmentFromOwnParent(t *testing.T) {
	// OX keeps the base parent's segment in place.
	p1 := Chromosome{0, 1, 2, 3, 4, 5}
	p2 := Chromosome{5, 4, 3, 2, 1, 0}
	c1 := oxChild(p1, p2, 2, 4)
	for i := 2; i <= 4; i++ {
		if c1[i] != p1[i] {
			t.Errorf("segment position %d = %d, want %d", i, c1[i], p1[i])
		}
	}
}
