package ga

import (
	"testing"

	"pnsched/internal/rng"
)

// TestEngineStepMatchesRun drives an Engine by hand and checks it
// reproduces Run exactly — same best, same fitness, same counters —
// since island evolution depends on the step-wise API being a faithful
// decomposition of the batch one.
func TestEngineStepMatchesRun(t *testing.T) {
	cfg := Config{MaxGenerations: 120, PopulationSize: 12}
	ran := func() Result {
		r := rng.New(21)
		return Run(cfg, sortednessEvaluator{}, randomPopulation(14, 12, r), r)
	}
	stepped := func() Result {
		r := rng.New(21)
		e := NewEngine(cfg, sortednessEvaluator{}, randomPopulation(14, 12, r), r)
		for e.Step() {
		}
		return e.Result()
	}
	a, b := ran(), stepped()
	if !a.Best.Equal(b.Best) || a.BestFitness != b.BestFitness ||
		a.Generations != b.Generations || a.Evaluations != b.Evaluations ||
		a.Reason != b.Reason {
		t.Errorf("stepped engine diverged from Run: %+v vs %+v", a, b)
	}
}

func TestEngineStepAfterDoneIsNoOp(t *testing.T) {
	r := rng.New(22)
	e := NewEngine(Config{MaxGenerations: 3}, sortednessEvaluator{}, randomPopulation(8, 8, r), r)
	for e.Step() {
	}
	if !e.Done() {
		t.Fatal("engine not done after Step returned false")
	}
	res := e.Result()
	if e.Step() {
		t.Error("Step on a done engine returned true")
	}
	if after := e.Result(); after.Generations != res.Generations || after.Evaluations != res.Evaluations {
		t.Errorf("Step on a done engine changed the result: %+v vs %+v", res, after)
	}
}

func TestEngineElitesOrderedByFitness(t *testing.T) {
	r := rng.New(23)
	e := NewEngine(Config{MaxGenerations: 10, PopulationSize: 10}, sortednessEvaluator{}, randomPopulation(10, 10, r), r)
	eval := sortednessEvaluator{}
	elites := e.Elites(4)
	if len(elites) != 4 {
		t.Fatalf("Elites(4) returned %d individuals", len(elites))
	}
	for i := 1; i < len(elites); i++ {
		if eval.Fitness(elites[i]) > eval.Fitness(elites[i-1]) {
			t.Errorf("elites out of order at %d", i)
		}
	}
	best, bestFit := e.Best()
	if !elites[0].Equal(best) && eval.Fitness(elites[0]) != bestFit {
		t.Error("top elite is not as fit as the best individual")
	}
	if got := e.Elites(100); len(got) != 10 {
		t.Errorf("Elites(100) = %d individuals, want clamped to population size 10", len(got))
	}
	if got := e.Elites(0); got != nil {
		t.Errorf("Elites(0) = %v, want nil", got)
	}
}

// TestEngineInjectReplacesWorst injects a perfect individual and checks
// it displaces the weakest slot and raises the best-so-far.
func TestEngineInjectReplacesWorst(t *testing.T) {
	r := rng.New(24)
	e := NewEngine(Config{MaxGenerations: 10}, sortednessEvaluator{}, randomPopulation(10, 10, r), r)
	perfect := make(Chromosome, 10)
	for i := range perfect {
		perfect[i] = i // identity order: maximal sortedness fitness
	}
	want := sortednessEvaluator{}.Fitness(perfect)
	evalsBefore := e.Evaluations()
	e.Inject([]Chromosome{perfect})
	if _, fit := e.Best(); fit != want {
		t.Errorf("best fitness after injecting perfect individual = %v, want %v", fit, want)
	}
	if e.Evaluations() != evalsBefore+1 {
		t.Errorf("Inject performed %d evaluations, want 1", e.Evaluations()-evalsBefore)
	}
	// The migrant must be owned by the engine, not aliased.
	perfect[0], perfect[1] = perfect[1], perfect[0]
	if _, fit := e.Best(); fit != want {
		t.Error("engine best aliases the injected migrant")
	}
}

func TestEngineMaxGenerationsOneRunsOneGeneration(t *testing.T) {
	r := rng.New(26)
	e := NewEngine(Config{MaxGenerations: 1, PopulationSize: 6}, sortednessEvaluator{}, randomPopulation(8, 6, r), r)
	for e.Step() {
	}
	if res := e.Result(); res.Generations != 1 || res.Reason != StopMaxGenerations {
		t.Errorf("result = %+v, want 1 generation / max-generations", res)
	}
}

func TestEngineInjectOnDoneEngineIsNoOp(t *testing.T) {
	r := rng.New(25)
	e := NewEngine(Config{MaxGenerations: 2}, sortednessEvaluator{}, randomPopulation(6, 6, r), r)
	for e.Step() {
	}
	evals := e.Evaluations()
	e.Inject(randomPopulation(6, 2, r))
	if e.Evaluations() != evals {
		t.Error("Inject on a done engine evaluated migrants")
	}
}
