package ga

import "testing"

func TestClone(t *testing.T) {
	c := Chromosome{1, 2, 3}
	d := c.Clone()
	d[0] = 99
	if c[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !c.Equal(Chromosome{1, 2, 3}) {
		t.Error("original mutated")
	}
}

func TestEqual(t *testing.T) {
	a := Chromosome{1, 2, 3}
	if !a.Equal(Chromosome{1, 2, 3}) {
		t.Error("equal chromosomes reported unequal")
	}
	if a.Equal(Chromosome{1, 2}) {
		t.Error("different lengths reported equal")
	}
	if a.Equal(Chromosome{1, 2, 4}) {
		t.Error("different contents reported equal")
	}
}

func TestIsPermutationOf(t *testing.T) {
	a := Chromosome{3, 1, 2}
	if !a.IsPermutationOf(Chromosome{1, 2, 3}) {
		t.Error("permutation not recognised")
	}
	if a.IsPermutationOf(Chromosome{1, 2, 2}) {
		t.Error("multiset mismatch not caught")
	}
	if a.IsPermutationOf(Chromosome{1, 2}) {
		t.Error("length mismatch not caught")
	}
	// Multiset semantics: {1,1,2} vs {1,2,2} differ.
	if (Chromosome{1, 1, 2}).IsPermutationOf(Chromosome{1, 2, 2}) {
		t.Error("duplicate counting broken")
	}
}

func TestValidatePermutation(t *testing.T) {
	if err := (Chromosome{5, -1, 3}).ValidatePermutation(); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := (Chromosome{5, 3, 5}).ValidatePermutation(); err == nil {
		t.Error("duplicate symbols accepted")
	}
	if err := (Chromosome{}).ValidatePermutation(); err != nil {
		t.Errorf("empty chromosome rejected: %v", err)
	}
}

func TestEvaluatorFunc(t *testing.T) {
	e := EvaluatorFunc(func(c Chromosome) float64 { return float64(len(c)) })
	if got := e.Fitness(Chromosome{1, 2, 3}); got != 3 {
		t.Errorf("EvaluatorFunc = %v", got)
	}
}
