package ga

import (
	"testing"

	"pnsched/internal/rng"
)

// parents builds two random permutations of n mixed-sign symbols (task
// ids plus delimiter-style negatives), the GA's production shape.
func parents(n int, r *rng.RNG) (Chromosome, Chromosome) {
	symbols := make([]int, n)
	for i := range symbols {
		symbols[i] = i - n/8 // a few negatives, mostly non-negative
	}
	p1 := make(Chromosome, n)
	p2 := make(Chromosome, n)
	for i, v := range r.Perm(n) {
		p1[i] = symbols[v]
	}
	for i, v := range r.Perm(n) {
		p2[i] = symbols[v]
	}
	return p1, p2
}

func BenchmarkCycleCrossover250(b *testing.B) {
	r := rng.New(1)
	p1, p2 := parents(250, r) // batch 200 + 50 processors
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CycleCrossover(p1, p2)
	}
}

func BenchmarkCycleCrossoverSparse(b *testing.B) {
	// Sparse symbols force the map-based index path.
	r := rng.New(2)
	n := 250
	p1 := make(Chromosome, n)
	for i := range p1 {
		p1[i] = i * 100000
	}
	p2 := p1.Clone()
	r.Shuffle(n, func(i, j int) { p2[i], p2[j] = p2[j], p2[i] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CycleCrossover(p1, p2)
	}
}

func BenchmarkRouletteWheel(b *testing.B) {
	r := rng.New(3)
	fitness := make([]float64, 20)
	for i := range fitness {
		fitness[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouletteWheel(fitness, 20, r)
	}
}

func BenchmarkSwapMutation(b *testing.B) {
	r := rng.New(4)
	c := Chromosome(r.Perm(250))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SwapMutation(c, r)
	}
}

func TestCycleCrossoverSparseSymbols(t *testing.T) {
	// Exercise the map fallback: symbols spread over a huge range.
	p1 := Chromosome{0, 1 << 30, -(1 << 30), 42}
	p2 := Chromosome{42, -(1 << 30), 1 << 30, 0}
	c1, c2 := CycleCrossover(p1, p2)
	if !c1.IsPermutationOf(p1) || !c2.IsPermutationOf(p1) {
		t.Errorf("sparse crossover broke permutations: %v %v", c1, c2)
	}
	for i := range p1 {
		if c1[i] != p1[i] && c1[i] != p2[i] {
			t.Errorf("position %d not from either parent", i)
		}
	}
}

func TestCycleCrossoverEmptyParents(t *testing.T) {
	c1, c2 := CycleCrossover(Chromosome{}, Chromosome{})
	if len(c1) != 0 || len(c2) != 0 {
		t.Error("empty parents produced non-empty children")
	}
}
