package ga

import (
	"fmt"
	"sort"

	"pnsched/internal/rng"
)

// StopReason reports why a GA run terminated.
type StopReason int

// Stop reasons, in the order the engine checks them.
const (
	// StopMaxGenerations: the generation cap (1000 in the paper) was hit.
	StopMaxGenerations StopReason = iota
	// StopTarget: the best fitness reached Config.TargetFitness — the
	// paper's "if [the best makespan] is less than a specified minimum,
	// the GA stops evolving", expressed on the fitness scale.
	StopTarget
	// StopCallback: Config.Stop returned true — used by the scheduler to
	// abort evolution "if one of the processors becomes idle".
	StopCallback
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopMaxGenerations:
		return "max-generations"
	case StopTarget:
		return "target-fitness"
	case StopCallback:
		return "callback"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Config parametrises the engine. The defaults (applied by Run for zero
// fields) follow the paper: a micro-GA population of 20 and a cap of
// 1000 generations.
type Config struct {
	// PopulationSize is the number of individuals (default 20 — "a
	// micro GA ... which speeds up computation time without impacting
	// greatly on the final result").
	PopulationSize int
	// MaxGenerations caps evolution (default 1000 — "the quality of the
	// schedules returned with more than that number does not justify
	// the increased computation cost").
	MaxGenerations int
	// CrossoverFraction is the fraction of the next population created
	// by crossover of selected pairs (default 0.8). Zero means "unset"
	// (the default applies); any negative value disables crossover
	// entirely — the sentinel that makes crossover-free operator
	// ablations expressible.
	CrossoverFraction float64
	// Crossover selects the permutation crossover operator; nil uses
	// the paper's cycle crossover (CX). PMX and OX are provided for
	// operator ablations.
	Crossover Crossover
	// MutationsPerGeneration is how many random swap mutations are
	// applied to randomly chosen individuals each generation
	// (default 1, per the paper's singular "a randomly chosen
	// individual"). Zero means "unset" (the default applies); any
	// negative value disables mutation entirely (the mutation-free
	// ablation).
	MutationsPerGeneration int
	// Elitism preserves the best individual across generations
	// (default true). The paper tracks "the individual with the lowest
	// makespan ... after each generation" and Fig. 3's monotone
	// improvement implies the best is never lost.
	Elitism bool
	// TargetFitness stops evolution once the best fitness reaches this
	// value; zero disables the check.
	TargetFitness float64
	// Mutate, when non-nil, replaces the default SwapMutation — it is
	// applied to each randomly chosen individual.
	Mutate func(c Chromosome, r *rng.RNG)
	// PostGeneration, when non-nil, runs after selection each
	// generation with the whole population; the scheduler uses it for
	// the §3.5 rebalancing heuristic. Implementations may modify
	// individuals in place but must preserve the permutation property.
	PostGeneration func(pop []Chromosome, r *rng.RNG)
	// Stop, when non-nil, is polled once per generation with the
	// generation number and current best fitness; returning true aborts
	// evolution (the processor-went-idle condition).
	Stop func(gen int, bestFitness float64) bool
	// OnGeneration, when non-nil, observes each generation's best
	// individual — used to record Fig. 3's per-generation makespan
	// trajectories.
	OnGeneration func(gen int, best Chromosome, bestFitness float64)
}

func (c *Config) applyDefaults() {
	if c.PopulationSize == 0 {
		c.PopulationSize = 20
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 1000
	}
	// Zero is "unset" (paper default); negative is the explicit
	// disabled sentinel, resolved here to the operator-off value.
	switch {
	case c.CrossoverFraction == 0:
		c.CrossoverFraction = 0.8
	case c.CrossoverFraction < 0:
		c.CrossoverFraction = 0
	}
	switch {
	case c.MutationsPerGeneration == 0:
		c.MutationsPerGeneration = 1
	case c.MutationsPerGeneration < 0:
		c.MutationsPerGeneration = 0
	}
}

// Result reports a finished run.
type Result struct {
	Best        Chromosome
	BestFitness float64
	Generations int
	Reason      StopReason
	// Evaluations is the number of fitness computations performed.
	// With a SlotEvaluator, individuals whose fitness is known from
	// provenance (roulette clones, the elitism reinsert) are not
	// re-scored, so this is smaller than population × generations.
	Evaluations int
	// GenesEvaluated is the evaluation work in chromosome positions
	// scanned: full evaluations charge the whole chromosome length,
	// delta re-evaluations only the rescanned positions. When the
	// evaluator implements GeneCounter the count is the evaluator's
	// own (and includes work charged by hooks sharing it, such as the
	// §3.5 rebalancer); otherwise it is evaluations × chromosome
	// length.
	GenesEvaluated int
}

// Engine exposes the generation loop of Run one step at a time, so
// callers can interleave evolution with outside work — the island-model
// runner (internal/island) advances several engines in parallel and
// exchanges elites between steps. An Engine is single-goroutine; wrap
// coordination around it, not inside it.
//
// The zero value is unusable; construct with NewEngine. Run is the
// convenience wrapper that drives an Engine to completion, and
// NewEngine + Step reproduces Run exactly (same random sequence, same
// results).
type Engine struct {
	cfg     Config
	eval    Evaluator
	slots   SlotEvaluator // non-nil when eval tracks fitness provenance
	r       *rng.RNG
	pop     []Chromosome
	next    []Chromosome
	fitness []float64

	best        Chromosome
	bestFitness float64
	gen         int // completed generations
	evals       int
	genes       int // gene work accumulated for plain evaluators

	done        bool
	reason      StopReason
	generations int // Result.Generations once done
}

// NewEngine initialises a GA over the initial population: the
// population is cloned (callers keep their seeds), padded or trimmed to
// the configured size, and evaluated once (generation 0). NewEngine
// panics if the initial population is empty — the caller owns
// population construction (the paper seeds it with a list-scheduling
// heuristic), so an empty one is a programming error.
func NewEngine(cfg Config, eval Evaluator, initial []Chromosome, r *rng.RNG) *Engine {
	cfg.applyDefaults()
	if len(initial) == 0 {
		panic("ga: empty initial population")
	}
	e := &Engine{cfg: cfg, eval: eval, r: r}
	e.slots, _ = eval.(SlotEvaluator)

	// Working population: clone so callers keep their seeds.
	pop := make([]Chromosome, len(initial))
	for i, c := range initial {
		pop[i] = c.Clone()
	}
	// Pad or trim to the configured size by cycling clones of the seeds.
	for len(pop) < cfg.PopulationSize {
		pop = append(pop, pop[len(pop)%len(initial)].Clone())
	}
	if len(pop) > cfg.PopulationSize {
		pop = pop[:cfg.PopulationSize]
	}
	e.pop = pop
	e.fitness = make([]float64, len(pop))
	e.next = make([]Chromosome, 0, len(pop))
	if e.slots != nil {
		e.slots.InitSlots(len(pop))
	}

	bestIdx := e.evaluate()
	e.best = pop[bestIdx].Clone()
	e.bestFitness = e.fitness[bestIdx]
	if e.slots != nil {
		e.slots.SaveBest(bestIdx)
	}
	if cfg.OnGeneration != nil {
		cfg.OnGeneration(0, e.best, e.bestFitness)
	}
	if cfg.TargetFitness > 0 && e.bestFitness >= cfg.TargetFitness {
		e.stop(0, StopTarget)
	}
	return e
}

// evaluate scores the whole population and returns the index of the
// fittest individual. With a slot evaluator, individuals whose fitness
// is already known from provenance are served from cache.
func (e *Engine) evaluate() (bestIdx int) {
	for i, c := range e.pop {
		e.fitness[i] = e.score(i, c)
		if e.fitness[i] > e.fitness[bestIdx] {
			bestIdx = i
		}
	}
	return bestIdx
}

// score computes (or retrieves) the fitness of the individual in the
// given population slot, maintaining the evaluation counters.
func (e *Engine) score(slot int, c Chromosome) float64 {
	if e.slots != nil {
		f, computed := e.slots.FitnessSlot(slot, c)
		if computed {
			e.evals++
			// Fallback ledger for slot evaluators without their own
			// GeneCounter: a computed slot fitness is billed as one
			// full evaluation.
			e.genes += len(c)
		}
		return f
	}
	e.evals++
	e.genes += len(c)
	return e.eval.Fitness(c)
}

func (e *Engine) stop(generations int, reason StopReason) {
	e.done = true
	e.generations = generations
	e.reason = reason
}

// Step advances evolution by one generation: crossover, selection,
// mutation, the PostGeneration hook, elitism and re-evaluation. It
// returns false once a stopping condition holds (the generation cap,
// the target fitness, or the Stop callback), after which further calls
// are no-ops.
func (e *Engine) Step() bool {
	if e.done {
		return false
	}
	gen := e.gen + 1
	if gen > e.cfg.MaxGenerations {
		e.stop(e.cfg.MaxGenerations, StopMaxGenerations)
		return false
	}
	if e.cfg.Stop != nil && e.cfg.Stop(gen, e.bestFitness) {
		e.stop(gen-1, StopCallback)
		return false
	}

	n := len(e.pop)
	if e.slots != nil {
		e.slots.BeginGeneration()
	}

	// Crossover: pair roulette-selected parents. Children are fresh
	// individuals — their fitness must be computed once, then cached.
	next := e.next[:0]
	pairs := int(float64(n) * e.cfg.CrossoverFraction / 2)
	if pairs > 0 {
		cross := e.cfg.Crossover
		if cross == nil {
			cross = CX
		}
		parents := RouletteWheel(e.fitness, 2*pairs, e.r)
		for k := 0; k < pairs; k++ {
			a, b := e.pop[parents[2*k]], e.pop[parents[2*k+1]]
			c1, c2 := cross(a, b, e.r)
			if e.slots != nil {
				if len(next) < n {
					e.slots.DeriveFresh(len(next))
				}
				if len(next)+1 < n {
					e.slots.DeriveFresh(len(next) + 1)
				}
			}
			next = append(next, c1, c2)
		}
	}
	// Fill the remainder by roulette-cloning survivors (selection).
	// Clones inherit their parent's known fitness.
	if missing := n - len(next); missing > 0 {
		for _, idx := range RouletteWheel(e.fitness, missing, e.r) {
			if e.slots != nil && len(next) < n {
				e.slots.DeriveClone(len(next), idx)
			}
			next = append(next, e.pop[idx].Clone())
		}
	}
	next = next[:n]

	e.pop, e.next = next, e.pop
	if e.slots != nil {
		e.slots.CommitGeneration()
	}

	// Random mutation on randomly chosen individuals.
	for k := 0; k < e.cfg.MutationsPerGeneration; k++ {
		idx := e.r.Intn(n)
		c := e.pop[idx]
		if e.slots != nil && e.cfg.Mutate == nil {
			// SwapMutation, unrolled only far enough that the swapped
			// positions reach the slot evaluator for a delta update.
			if len(c) >= 2 {
				i, j := swapPositions(len(c), e.r)
				c[i], c[j] = c[j], c[i]
				e.slots.SwapAt(idx, c, i, j)
			}
			continue
		}
		mutate := e.cfg.Mutate
		if mutate == nil {
			mutate = SwapMutation
		}
		mutate(c, e.r)
		if e.slots != nil {
			e.slots.Invalidate(idx)
		}
	}

	if e.cfg.PostGeneration != nil {
		e.cfg.PostGeneration(e.pop, e.r)
	}

	// Elitism: reinsert the best-so-far over a random slot, carrying
	// its known fitness state.
	if e.cfg.Elitism {
		slot := e.r.Intn(n)
		e.pop[slot] = e.best.Clone()
		if e.slots != nil {
			e.slots.RestoreBest(slot)
		}
	}

	genBest := e.evaluate()
	if e.fitness[genBest] > e.bestFitness {
		e.bestFitness = e.fitness[genBest]
		e.best = e.pop[genBest].Clone()
		if e.slots != nil {
			e.slots.SaveBest(genBest)
		}
	}
	e.gen = gen
	if e.cfg.OnGeneration != nil {
		e.cfg.OnGeneration(gen, e.best, e.bestFitness)
	}
	if e.cfg.TargetFitness > 0 && e.bestFitness >= e.cfg.TargetFitness {
		e.stop(gen, StopTarget)
		return false
	}
	return true
}

// Done reports whether a stopping condition has been reached.
func (e *Engine) Done() bool { return e.done }

// Generation returns the number of completed generations.
func (e *Engine) Generation() int { return e.gen }

// Evaluations returns the total fitness evaluations performed so far.
func (e *Engine) Evaluations() int { return e.evals }

// GenesEvaluated returns the evaluation work performed so far, in
// chromosome positions scanned (see Result.GenesEvaluated).
func (e *Engine) GenesEvaluated() int {
	if gc, ok := e.eval.(GeneCounter); ok {
		return gc.GenesEvaluated()
	}
	return e.genes
}

// Best returns a clone of the best individual found so far and its
// fitness.
func (e *Engine) Best() (Chromosome, float64) {
	return e.best.Clone(), e.bestFitness
}

// Result summarises the run so far; after Step has returned false it is
// identical to what Run would have returned.
func (e *Engine) Result() Result {
	generations := e.generations
	if !e.done {
		generations = e.gen
	}
	return Result{
		Best:           e.best.Clone(),
		BestFitness:    e.bestFitness,
		Generations:    generations,
		Reason:         e.reason,
		Evaluations:    e.evals,
		GenesEvaluated: e.GenesEvaluated(),
	}
}

// Elites returns clones of the k fittest individuals of the current
// population, fittest first (ties resolve to the lower population
// index, keeping island migration deterministic). k is clamped to the
// population size.
func (e *Engine) Elites(k int) []Chromosome {
	n := len(e.pop)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return e.fitness[idx[a]] > e.fitness[idx[b]]
	})
	out := make([]Chromosome, k)
	for i := 0; i < k; i++ {
		out[i] = e.pop[idx[i]].Clone()
	}
	return out
}

// Inject replaces the len(migrants) least-fit individuals of the
// current population with clones of the migrants, re-evaluating them
// against this engine's evaluator (ties resolve to the lower population
// index). The best-so-far is updated if a migrant beats it. Inject is
// how island migration enters a population; it is deterministic and a
// no-op on a stopped engine.
func (e *Engine) Inject(migrants []Chromosome) {
	if e.done || len(migrants) == 0 {
		return
	}
	n := len(e.pop)
	if len(migrants) > n {
		migrants = migrants[:n]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return e.fitness[idx[a]] < e.fitness[idx[b]]
	})
	for i, m := range migrants {
		slot := idx[i]
		e.pop[slot] = m.Clone()
		if e.slots != nil {
			e.slots.Invalidate(slot)
		}
		e.fitness[slot] = e.score(slot, e.pop[slot])
		if e.fitness[slot] > e.bestFitness {
			e.bestFitness = e.fitness[slot]
			e.best = e.pop[slot].Clone()
			if e.slots != nil {
				e.slots.SaveBest(slot)
			}
		}
	}
}

// Run evolves the initial population against the evaluator and returns
// the best individual found. The initial population is not modified.
// Run panics if the initial population is empty — the caller owns
// population construction (the paper seeds it with a list-scheduling
// heuristic), so an empty one is a programming error.
//
// Elitism note: defaults preserve the best individual, so best fitness
// is non-decreasing across generations.
//
// Run is NewEngine followed by Step to completion; use the Engine
// directly to interleave evolution with migration or other outside
// work.
func Run(cfg Config, eval Evaluator, initial []Chromosome, r *rng.RNG) Result {
	e := NewEngine(cfg, eval, initial, r)
	for e.Step() {
	}
	return e.Result()
}
