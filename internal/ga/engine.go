package ga

import (
	"fmt"

	"pnsched/internal/rng"
)

// StopReason reports why a GA run terminated.
type StopReason int

// Stop reasons, in the order the engine checks them.
const (
	// StopMaxGenerations: the generation cap (1000 in the paper) was hit.
	StopMaxGenerations StopReason = iota
	// StopTarget: the best fitness reached Config.TargetFitness — the
	// paper's "if [the best makespan] is less than a specified minimum,
	// the GA stops evolving", expressed on the fitness scale.
	StopTarget
	// StopCallback: Config.Stop returned true — used by the scheduler to
	// abort evolution "if one of the processors becomes idle".
	StopCallback
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopMaxGenerations:
		return "max-generations"
	case StopTarget:
		return "target-fitness"
	case StopCallback:
		return "callback"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Config parametrises the engine. The defaults (applied by Run for zero
// fields) follow the paper: a micro-GA population of 20 and a cap of
// 1000 generations.
type Config struct {
	// PopulationSize is the number of individuals (default 20 — "a
	// micro GA ... which speeds up computation time without impacting
	// greatly on the final result").
	PopulationSize int
	// MaxGenerations caps evolution (default 1000 — "the quality of the
	// schedules returned with more than that number does not justify
	// the increased computation cost").
	MaxGenerations int
	// CrossoverFraction is the fraction of the next population created
	// by crossover of selected pairs (default 0.8).
	CrossoverFraction float64
	// Crossover selects the permutation crossover operator; nil uses
	// the paper's cycle crossover (CX). PMX and OX are provided for
	// operator ablations.
	Crossover Crossover
	// MutationsPerGeneration is how many random swap mutations are
	// applied to randomly chosen individuals each generation
	// (default 1, per the paper's singular "a randomly chosen
	// individual").
	MutationsPerGeneration int
	// Elitism preserves the best individual across generations
	// (default true). The paper tracks "the individual with the lowest
	// makespan ... after each generation" and Fig. 3's monotone
	// improvement implies the best is never lost.
	Elitism bool
	// TargetFitness stops evolution once the best fitness reaches this
	// value; zero disables the check.
	TargetFitness float64
	// Mutate, when non-nil, replaces the default SwapMutation — it is
	// applied to each randomly chosen individual.
	Mutate func(c Chromosome, r *rng.RNG)
	// PostGeneration, when non-nil, runs after selection each
	// generation with the whole population; the scheduler uses it for
	// the §3.5 rebalancing heuristic. Implementations may modify
	// individuals in place but must preserve the permutation property.
	PostGeneration func(pop []Chromosome, r *rng.RNG)
	// Stop, when non-nil, is polled once per generation with the
	// generation number and current best fitness; returning true aborts
	// evolution (the processor-went-idle condition).
	Stop func(gen int, bestFitness float64) bool
	// OnGeneration, when non-nil, observes each generation's best
	// individual — used to record Fig. 3's per-generation makespan
	// trajectories.
	OnGeneration func(gen int, best Chromosome, bestFitness float64)
}

func (c *Config) applyDefaults() {
	if c.PopulationSize == 0 {
		c.PopulationSize = 20
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 1000
	}
	if c.CrossoverFraction == 0 {
		c.CrossoverFraction = 0.8
	}
	if c.MutationsPerGeneration == 0 {
		c.MutationsPerGeneration = 1
	}
}

// Result reports a finished run.
type Result struct {
	Best        Chromosome
	BestFitness float64
	Generations int
	Reason      StopReason
	Evaluations int // total fitness evaluations performed
}

// Run evolves the initial population against the evaluator and returns
// the best individual found. The initial population is not modified.
// Run panics if the initial population is empty — the caller owns
// population construction (the paper seeds it with a list-scheduling
// heuristic), so an empty one is a programming error.
//
// Elitism note: defaults preserve the best individual, so best fitness
// is non-decreasing across generations.
func Run(cfg Config, eval Evaluator, initial []Chromosome, r *rng.RNG) Result {
	cfg.applyDefaults()
	if len(initial) == 0 {
		panic("ga: empty initial population")
	}

	// Working population: clone so callers keep their seeds.
	pop := make([]Chromosome, len(initial))
	for i, c := range initial {
		pop[i] = c.Clone()
	}
	// Pad or trim to the configured size by roulette-cloning.
	for len(pop) < cfg.PopulationSize {
		pop = append(pop, pop[len(pop)%len(initial)].Clone())
	}
	if len(pop) > cfg.PopulationSize {
		pop = pop[:cfg.PopulationSize]
	}
	n := len(pop)

	fitness := make([]float64, n)
	evals := 0
	evaluate := func() (bestIdx int) {
		for i, c := range pop {
			fitness[i] = eval.Fitness(c)
			evals++
			if fitness[i] > fitness[bestIdx] {
				bestIdx = i
			}
		}
		return bestIdx
	}

	bestIdx := evaluate()
	best := pop[bestIdx].Clone()
	bestFitness := fitness[bestIdx]
	if cfg.OnGeneration != nil {
		cfg.OnGeneration(0, best, bestFitness)
	}

	result := func(gen int, reason StopReason) Result {
		return Result{
			Best:        best,
			BestFitness: bestFitness,
			Generations: gen,
			Reason:      reason,
			Evaluations: evals,
		}
	}

	if cfg.TargetFitness > 0 && bestFitness >= cfg.TargetFitness {
		return result(0, StopTarget)
	}

	next := make([]Chromosome, 0, n)
	for gen := 1; gen <= cfg.MaxGenerations; gen++ {
		if cfg.Stop != nil && cfg.Stop(gen, bestFitness) {
			return result(gen-1, StopCallback)
		}

		// Crossover: pair roulette-selected parents.
		next = next[:0]
		pairs := int(float64(n) * cfg.CrossoverFraction / 2)
		if pairs > 0 {
			cross := cfg.Crossover
			if cross == nil {
				cross = CX
			}
			parents := RouletteWheel(fitness, 2*pairs, r)
			for k := 0; k < pairs; k++ {
				a, b := pop[parents[2*k]], pop[parents[2*k+1]]
				c1, c2 := cross(a, b, r)
				next = append(next, c1, c2)
			}
		}
		// Fill the remainder by roulette-cloning survivors (selection).
		if missing := n - len(next); missing > 0 {
			for _, idx := range RouletteWheel(fitness, missing, r) {
				next = append(next, pop[idx].Clone())
			}
		}
		next = next[:n]

		// Random mutation on randomly chosen individuals.
		mutate := cfg.Mutate
		if mutate == nil {
			mutate = SwapMutation
		}
		for k := 0; k < cfg.MutationsPerGeneration; k++ {
			mutate(next[r.Intn(n)], r)
		}

		pop, next = next, pop

		if cfg.PostGeneration != nil {
			cfg.PostGeneration(pop, r)
		}

		// Elitism: reinsert the best-so-far over a random slot.
		if cfg.Elitism {
			pop[r.Intn(n)] = best.Clone()
		}

		genBest := evaluate()
		if fitness[genBest] > bestFitness {
			bestFitness = fitness[genBest]
			best = pop[genBest].Clone()
		}
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, best, bestFitness)
		}
		if cfg.TargetFitness > 0 && bestFitness >= cfg.TargetFitness {
			return result(gen, StopTarget)
		}
	}
	return result(cfg.MaxGenerations, StopMaxGenerations)
}
