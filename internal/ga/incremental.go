package ga

// This file defines the optional evaluator extensions behind the
// incremental fitness engine. The generation loop derives most of each
// new population from individuals it has already scored — roulette-
// cloned survivors are copies, the elitism reinsert is the best-so-far,
// and a swap mutant differs from its base by exactly two positions —
// yet a plain Evaluator forces the engine to re-score everything from
// scratch every generation. A SlotEvaluator receives that provenance
// instead: the engine tells it how every slot of the next population
// was derived, and the evaluator keeps whatever per-slot cached state
// (completion-time vectors, in internal/core) lets it serve known
// fitness values without recomputing and re-score mutants by delta.
//
// The contract is strictly observational: a SlotEvaluator must return
// bit-identical fitness values to what Fitness would compute on the
// same chromosome, so an engine driven by one produces byte-identical
// populations, best individuals and fitness trajectories to an engine
// driven by a plain Evaluator (the equivalence is asserted by tests in
// internal/core). Only the amount of evaluation work differs, which is
// why GeneCounter exists: the §3.4 budget model wants the genes
// actually evaluated, not the number of Fitness calls.

// SlotEvaluator is an optional Evaluator extension for engines that
// track fitness provenance. NewEngine detects it with a type assertion
// and, when present, drives the slot protocol around the generation
// loop:
//
//   - InitSlots(n) once, before the initial population is scored;
//   - each generation: BeginGeneration, then DeriveFresh(dst) for
//     every crossover child and DeriveClone(dst, src) for every
//     roulette-cloned survivor, then CommitGeneration when the new
//     population replaces the old one;
//   - SwapAt after the default swap mutation (the two exchanged
//     positions are known), Invalidate after an opaque edit (a custom
//     Mutate hook, an injected migrant);
//   - RestoreBest when elitism reinserts the best-so-far, SaveBest
//     whenever a slot's individual becomes the new best-so-far;
//   - FitnessSlot for every slot at evaluation time.
//
// The PostGeneration hook runs between CommitGeneration and the
// elitism reinsert; hook implementations that edit individuals in
// place must keep the evaluator's slot state coherent themselves
// (internal/core's rebalancer shares the evaluator object and updates
// it directly) or call Invalidate.
//
// A SlotEvaluator instance belongs to exactly one Engine: slot indices
// are engine population slots.
type SlotEvaluator interface {
	Evaluator

	// InitSlots sizes the per-slot cache for a population of n.
	InitSlots(n int)
	// BeginGeneration opens the next generation's slot buffer.
	BeginGeneration()
	// DeriveFresh marks next-generation slot dst as a brand-new
	// individual (a crossover child) with no usable cached state.
	DeriveFresh(dst int)
	// DeriveClone marks next-generation slot dst as a copy of current
	// slot src, inheriting src's cached fitness state.
	DeriveClone(dst, src int)
	// CommitGeneration replaces the current generation's slot state
	// with the one built since BeginGeneration.
	CommitGeneration()

	// SwapAt records that positions i and j of slot's chromosome were
	// exchanged (c is the chromosome after the swap), letting the
	// evaluator delta-update cached state instead of discarding it.
	SwapAt(slot int, c Chromosome, i, j int)
	// Invalidate discards slot's cached state after an opaque edit.
	Invalidate(slot int)

	// FitnessSlot scores the chromosome occupying slot. It must return
	// exactly the value Fitness(c) would; computed reports whether any
	// evaluation work was performed (false: served from cache).
	FitnessSlot(slot int, c Chromosome) (fitness float64, computed bool)

	// SaveBest snapshots slot's cached state as the best-so-far, and
	// RestoreBest installs that snapshot back into a slot (the elitism
	// reinsert). SaveBest is called only for slots FitnessSlot has just
	// scored.
	SaveBest(slot int)
	RestoreBest(slot int)
}

// GeneCounter is an optional Evaluator extension reporting evaluation
// work in genes (chromosome positions scanned): a full evaluation of a
// length-L chromosome costs L genes, a delta re-evaluation only the
// positions actually rescanned. Engines surface it as
// Result.GenesEvaluated so cost models can charge actual work rather
// than call counts. The count is cumulative over the evaluator's
// lifetime and includes work charged by hooks sharing the evaluator
// (e.g. the §3.5 rebalancer).
type GeneCounter interface {
	GenesEvaluated() int
}
