package ga

import (
	"testing"

	"pnsched/internal/rng"
)

// sortednessEvaluator rewards permutations close to identity order: the
// fitness is the count of adjacent in-order pairs plus one. A GA that
// works must drive a shuffled permutation toward sortedness.
type sortednessEvaluator struct{}

func (sortednessEvaluator) Fitness(c Chromosome) float64 {
	score := 1.0
	for i := 1; i < len(c); i++ {
		if c[i] > c[i-1] {
			score++
		}
	}
	return score
}

func randomPopulation(n, size int, r *rng.RNG) []Chromosome {
	pop := make([]Chromosome, size)
	for i := range pop {
		pop[i] = Chromosome(r.Perm(n))
	}
	return pop
}

func TestRunImprovesFitness(t *testing.T) {
	r := rng.New(1)
	pop := randomPopulation(20, 20, r)
	eval := sortednessEvaluator{}
	var initBest float64
	for _, c := range pop {
		if f := eval.Fitness(c); f > initBest {
			initBest = f
		}
	}
	res := Run(Config{MaxGenerations: 300}, eval, pop, r)
	if res.BestFitness <= initBest {
		t.Errorf("GA did not improve: initial best %v, final %v", initBest, res.BestFitness)
	}
	if err := res.Best.ValidatePermutation(); err != nil {
		t.Errorf("best individual invalid: %v", err)
	}
	if res.Reason != StopMaxGenerations {
		t.Errorf("reason = %v", res.Reason)
	}
	if res.Generations != 300 {
		t.Errorf("generations = %d", res.Generations)
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		r := rng.New(42)
		pop := randomPopulation(15, 10, r)
		return Run(Config{MaxGenerations: 100, PopulationSize: 10}, sortednessEvaluator{}, pop, r)
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness || !a.Best.Equal(b.Best) {
		t.Errorf("runs with identical seeds diverged: %v vs %v", a.BestFitness, b.BestFitness)
	}
}

func TestElitismMonotoneBest(t *testing.T) {
	r := rng.New(7)
	pop := randomPopulation(20, 20, r)
	var history []float64
	Run(Config{
		MaxGenerations: 200,
		Elitism:        true,
		OnGeneration: func(gen int, best Chromosome, bestFitness float64) {
			history = append(history, bestFitness)
		},
	}, sortednessEvaluator{}, pop, r)
	if len(history) != 201 { // generation 0 plus 200 evolved
		t.Fatalf("history length = %d, want 201", len(history))
	}
	for i := 1; i < len(history); i++ {
		if history[i] < history[i-1] {
			t.Fatalf("best fitness regressed at generation %d: %v < %v", i, history[i], history[i-1])
		}
	}
}

func TestStopCallback(t *testing.T) {
	r := rng.New(8)
	pop := randomPopulation(10, 10, r)
	res := Run(Config{
		MaxGenerations: 1000,
		Stop:           func(gen int, _ float64) bool { return gen > 5 },
	}, sortednessEvaluator{}, pop, r)
	if res.Reason != StopCallback {
		t.Errorf("reason = %v, want callback", res.Reason)
	}
	if res.Generations != 5 {
		t.Errorf("generations = %d, want 5", res.Generations)
	}
}

func TestTargetFitnessStopsEarly(t *testing.T) {
	r := rng.New(9)
	pop := randomPopulation(10, 10, r)
	// Target below any achievable fitness: stops immediately at gen 0.
	res := Run(Config{MaxGenerations: 1000, TargetFitness: 1}, sortednessEvaluator{}, pop, r)
	if res.Reason != StopTarget {
		t.Errorf("reason = %v, want target", res.Reason)
	}
	if res.Generations != 0 {
		t.Errorf("generations = %d, want 0", res.Generations)
	}
}

func TestPopulationPaddingAndTrimming(t *testing.T) {
	r := rng.New(10)
	// 3 seeds, population of 12: engine must pad.
	pop := randomPopulation(8, 3, r)
	res := Run(Config{PopulationSize: 12, MaxGenerations: 10}, sortednessEvaluator{}, pop, r)
	if err := res.Best.ValidatePermutation(); err != nil {
		t.Errorf("padded run produced invalid best: %v", err)
	}
	// 30 seeds, population of 5: engine must trim.
	pop = randomPopulation(8, 30, r)
	res = Run(Config{PopulationSize: 5, MaxGenerations: 10}, sortednessEvaluator{}, pop, r)
	if err := res.Best.ValidatePermutation(); err != nil {
		t.Errorf("trimmed run produced invalid best: %v", err)
	}
}

func TestPostGenerationHook(t *testing.T) {
	r := rng.New(11)
	pop := randomPopulation(10, 10, r)
	calls := 0
	Run(Config{
		MaxGenerations: 50,
		PopulationSize: 10,
		PostGeneration: func(pop []Chromosome, r *rng.RNG) {
			calls++
			if len(pop) != 10 {
				t.Fatalf("hook saw %d individuals", len(pop))
			}
		},
	}, sortednessEvaluator{}, pop, r)
	if calls != 50 {
		t.Errorf("PostGeneration called %d times, want 50", calls)
	}
}

func TestCustomMutate(t *testing.T) {
	r := rng.New(12)
	pop := randomPopulation(10, 10, r)
	used := false
	Run(Config{
		MaxGenerations: 5,
		Mutate: func(c Chromosome, r *rng.RNG) {
			used = true
			SwapMutation(c, r)
		},
	}, sortednessEvaluator{}, pop, r)
	if !used {
		t.Error("custom mutation never invoked")
	}
}

func TestRunDoesNotMutateSeeds(t *testing.T) {
	r := rng.New(13)
	pop := randomPopulation(10, 5, r)
	copies := make([]Chromosome, len(pop))
	for i, c := range pop {
		copies[i] = c.Clone()
	}
	Run(Config{MaxGenerations: 20, PopulationSize: 5}, sortednessEvaluator{}, pop, r)
	for i := range pop {
		if !pop[i].Equal(copies[i]) {
			t.Errorf("seed %d was mutated by Run", i)
		}
	}
}

func TestEmptyPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty population did not panic")
		}
	}()
	Run(Config{}, sortednessEvaluator{}, nil, rng.New(1))
}

func TestAllChromosomesRemainPermutations(t *testing.T) {
	r := rng.New(14)
	pop := randomPopulation(12, 20, r)
	ref := pop[0].Clone()
	Run(Config{
		MaxGenerations: 100,
		PostGeneration: func(pop []Chromosome, _ *rng.RNG) {
			for _, c := range pop {
				if !c.IsPermutationOf(ref) {
					t.Fatalf("population corrupted: %v not a permutation of %v", c, ref)
				}
			}
		},
	}, sortednessEvaluator{}, pop, r)
}

func TestStopReasonString(t *testing.T) {
	if StopMaxGenerations.String() != "max-generations" ||
		StopTarget.String() != "target-fitness" ||
		StopCallback.String() != "callback" {
		t.Error("StopReason strings wrong")
	}
	if StopReason(99).String() == "" {
		t.Error("unknown reason must still stringify")
	}
}
