package ga

import (
	"fmt"
	"math"
	"sort"

	"pnsched/internal/rng"
)

// RouletteWheel implements the paper's §3.3 selection: each individual i
// receives a slot of size ςᵢ = Fᵢ / ΣFⱼ on the unit interval, and
// individuals are drawn (with replacement) by spinning the wheel count
// times. The returned slice holds indices into the fitness slice.
//
// Non-finite or non-positive fitness values are treated as zero weight.
// If every weight is zero the selection degenerates to uniform — the
// correct limit for an indifferent wheel, and it keeps the GA alive when
// the population is uniformly terrible.
func RouletteWheel(fitness []float64, count int, r *rng.RNG) []int {
	n := len(fitness)
	if n == 0 || count <= 0 {
		return nil
	}
	cum := make([]float64, n)
	var total float64
	for i, f := range fitness {
		if f > 0 && !math.IsInf(f, 0) && !math.IsNaN(f) {
			total += f
		}
		cum[i] = total
	}
	out := make([]int, count)
	if total <= 0 {
		for i := range out {
			out[i] = r.Intn(n)
		}
		return out
	}
	for i := range out {
		x := r.Float64() * total
		// Smallest index whose cumulative weight reaches x; duplicate
		// cumulative values (zero-weight individuals) resolve to the
		// first of the run, i.e. the individual owning the mass.
		idx := sort.SearchFloat64s(cum, x)
		if idx >= n { // x == total edge case
			idx = n - 1
		}
		// x == 0 with leading zero-weight individuals: advance to the
		// first individual with positive cumulative mass.
		for idx < n-1 && cum[idx] == 0 {
			idx++
		}
		out[i] = idx
	}
	return out
}

// CycleCrossover implements the permutation crossover of Oliver, Smith
// and Holland used by the paper (§3.3) "to promote exploration". Both
// children preserve the absolute position of every symbol: positions are
// partitioned into cycles, and alternate cycles are copied from each
// parent. The operator is deterministic given its parents.
//
// It panics if the parents are not permutations of the same symbol set —
// the GA must never reach that state, so it is asserted.
func CycleCrossover(p1, p2 Chromosome) (Chromosome, Chromosome) {
	n := len(p1)
	if n != len(p2) {
		panic(fmt.Sprintf("ga: cycle crossover length mismatch %d vs %d", n, len(p2)))
	}
	lookup := newPosIndex(p1)
	c1 := make(Chromosome, n)
	c2 := make(Chromosome, n)
	visited := make([]bool, n)
	cycle := 0
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Copy the cycle through position start, alternating source
		// parent per cycle.
		fromP1 := cycle%2 == 0
		i := start
		for {
			visited[i] = true
			if fromP1 {
				c1[i], c2[i] = p1[i], p2[i]
			} else {
				c1[i], c2[i] = p2[i], p1[i]
			}
			next, ok := lookup(p2[i])
			if !ok {
				panic(fmt.Sprintf("ga: cycle crossover: symbol %d of p2 absent from p1", p2[i]))
			}
			i = next
			if i == start {
				break
			}
		}
		cycle++
	}
	return c1, c2
}

// newPosIndex builds a symbol→position lookup for a chromosome. For the
// common case of a compact symbol range (task ids plus small negative
// delimiters) it uses a dense slice, avoiding per-crossover map
// allocations in the GA's hot loop; sparse symbol sets fall back to a
// map.
func newPosIndex(p Chromosome) func(sym int) (int, bool) {
	n := len(p)
	if n == 0 {
		return func(int) (int, bool) { return 0, false }
	}
	lo, hi := p[0], p[0]
	for _, v := range p {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if span := hi - lo + 1; span <= 16*n+64 {
		dense := make([]int, span)
		for i := range dense {
			dense[i] = -1
		}
		for i, v := range p {
			dense[v-lo] = i
		}
		return func(sym int) (int, bool) {
			i := sym - lo
			if i < 0 || i >= len(dense) || dense[i] < 0 {
				return 0, false
			}
			return dense[i], true
		}
	}
	pos := make(map[int]int, n)
	for i, v := range p {
		pos[v] = i
	}
	return func(sym int) (int, bool) {
		i, ok := pos[sym]
		return i, ok
	}
}

// SwapMutation exchanges two distinct random positions of c in place —
// the paper's first mutation ("we randomly swap elements of a randomly
// chosen individual"). Chromosomes shorter than 2 are left unchanged.
func SwapMutation(c Chromosome, r *rng.RNG) {
	n := len(c)
	if n < 2 {
		return
	}
	i, j := swapPositions(n, r)
	c[i], c[j] = c[j], c[i]
}

// swapPositions draws the two distinct positions SwapMutation
// exchanges. The engine's slot-evaluator path performs the swap itself
// (it must report the positions for a delta update), so the draw
// scheme lives here, once, keeping both paths byte-identical. n must
// be at least 2.
func swapPositions(n int, r *rng.RNG) (i, j int) {
	i = r.Intn(n)
	j = r.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}
