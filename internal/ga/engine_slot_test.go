package ga

import (
	"testing"

	"pnsched/internal/rng"
)

// cachingSlotEval is a minimal SlotEvaluator double: it caches fitness
// (not domain state) per slot, so provenance-served values come from
// the cache and everything else recomputes via the inner evaluator.
// It lets the engine's slot protocol be tested independently of
// internal/core's completion-time machinery.
type cachingSlotEval struct {
	inner    Evaluator
	cur, nxt []slotFit
	best     slotFit
	genes    int
	computed int
}

type slotFit struct {
	f  float64
	ok bool
}

func (e *cachingSlotEval) Fitness(c Chromosome) float64 {
	e.genes += len(c)
	return e.inner.Fitness(c)
}

func (e *cachingSlotEval) GenesEvaluated() int { return e.genes }

func (e *cachingSlotEval) InitSlots(n int) {
	e.cur = make([]slotFit, n)
	e.nxt = make([]slotFit, n)
}

func (e *cachingSlotEval) BeginGeneration() {
	for i := range e.nxt {
		e.nxt[i].ok = false
	}
}

func (e *cachingSlotEval) DeriveFresh(dst int)      { e.nxt[dst].ok = false }
func (e *cachingSlotEval) DeriveClone(dst, src int) { e.nxt[dst] = e.cur[src] }
func (e *cachingSlotEval) CommitGeneration()        { e.cur, e.nxt = e.nxt, e.cur }

func (e *cachingSlotEval) SwapAt(slot int, c Chromosome, i, j int) { e.cur[slot].ok = false }
func (e *cachingSlotEval) Invalidate(slot int)                     { e.cur[slot].ok = false }

func (e *cachingSlotEval) FitnessSlot(slot int, c Chromosome) (float64, bool) {
	if e.cur[slot].ok {
		return e.cur[slot].f, false
	}
	e.cur[slot] = slotFit{f: e.Fitness(c), ok: true}
	e.computed++
	return e.cur[slot].f, true
}

func (e *cachingSlotEval) SaveBest(slot int)    { e.best = e.cur[slot] }
func (e *cachingSlotEval) RestoreBest(slot int) { e.cur[slot] = e.best }

// TestSlotEvaluatorMatchesPlainRun: fitness provenance may change how
// much is evaluated, never what evolves — a Run driven by the slot
// double must reproduce the plain evaluator's populations exactly
// (same best, fitness, generations) with strictly fewer evaluations.
func TestSlotEvaluatorMatchesPlainRun(t *testing.T) {
	cfg := Config{MaxGenerations: 150, PopulationSize: 14}
	plain := func() Result {
		r := rng.New(31)
		return Run(cfg, sortednessEvaluator{}, randomPopulation(16, 14, r), r)
	}()
	slotted := func() Result {
		r := rng.New(31)
		return Run(cfg, &cachingSlotEval{inner: sortednessEvaluator{}}, randomPopulation(16, 14, r), r)
	}()
	if !plain.Best.Equal(slotted.Best) || plain.BestFitness != slotted.BestFitness ||
		plain.Generations != slotted.Generations || plain.Reason != slotted.Reason {
		t.Errorf("slot-evaluated run diverged from plain run: %+v vs %+v", plain, slotted)
	}
	if slotted.Evaluations >= plain.Evaluations {
		t.Errorf("slot evaluator computed %d fitnesses, plain %d — provenance saved nothing",
			slotted.Evaluations, plain.Evaluations)
	}
	if slotted.GenesEvaluated >= plain.GenesEvaluated {
		t.Errorf("slot genes %d, plain genes %d", slotted.GenesEvaluated, plain.GenesEvaluated)
	}
}

// TestGenesEvaluatedPlainEvaluator: without a GeneCounter, the engine
// bills evaluations × chromosome length.
func TestGenesEvaluatedPlainEvaluator(t *testing.T) {
	r := rng.New(33)
	res := Run(Config{MaxGenerations: 20, PopulationSize: 8}, sortednessEvaluator{}, randomPopulation(10, 8, r), r)
	if want := res.Evaluations * 10; res.GenesEvaluated != want {
		t.Errorf("GenesEvaluated = %d, want evaluations × length = %d", res.GenesEvaluated, want)
	}
}

// TestCrossoverDisabledSentinel: CrossoverFraction < 0 must disable
// crossover outright, while 0 still selects the paper default — the
// regression the sentinel convention exists for.
func TestCrossoverDisabledSentinel(t *testing.T) {
	runWith := func(frac float64) int {
		calls := 0
		counting := func(a, b Chromosome, r *rng.RNG) (Chromosome, Chromosome) {
			calls++
			return CX(a, b, r)
		}
		r := rng.New(34)
		Run(Config{MaxGenerations: 10, PopulationSize: 10, CrossoverFraction: frac, Crossover: counting},
			sortednessEvaluator{}, randomPopulation(12, 10, r), r)
		return calls
	}
	if calls := runWith(-1); calls != 0 {
		t.Errorf("CrossoverFraction -1 still performed %d crossovers", calls)
	}
	if calls := runWith(0); calls != 10*int(10*0.8/2) {
		t.Errorf("CrossoverFraction 0 (default 0.8) performed %d crossovers, want %d",
			calls, 10*int(10*0.8/2))
	}
}

// TestMutationDisabledSentinel: MutationsPerGeneration < 0 must
// disable mutation, while 0 still selects the paper default of one.
func TestMutationDisabledSentinel(t *testing.T) {
	runWith := func(muts int) int {
		calls := 0
		counting := func(c Chromosome, r *rng.RNG) {
			calls++
			SwapMutation(c, r)
		}
		r := rng.New(35)
		Run(Config{MaxGenerations: 10, PopulationSize: 10, MutationsPerGeneration: muts, Mutate: counting},
			sortednessEvaluator{}, randomPopulation(12, 10, r), r)
		return calls
	}
	if calls := runWith(-1); calls != 0 {
		t.Errorf("MutationsPerGeneration -1 still performed %d mutations", calls)
	}
	if calls := runWith(0); calls != 10 {
		t.Errorf("MutationsPerGeneration 0 (default 1) performed %d mutations, want 10", calls)
	}
}
