package ga

import (
	"fmt"

	"pnsched/internal/rng"
)

// This file implements two further permutation crossovers — PMX and
// OX — as ablation alternatives to the paper's cycle crossover. GA
// scheduling papers in the lineage the paper cites (Hou, Ansari & Ren;
// Zomaya et al.) differ in operator choice; these let the bench
// harness quantify what CX buys.

// Crossover is a permutation crossover operator: it takes two parents
// that are permutations of the same symbols and produces two children
// with the same property.
type Crossover func(p1, p2 Chromosome, r *rng.RNG) (Chromosome, Chromosome)

// CX adapts CycleCrossover to the Crossover signature (cycle crossover
// itself is deterministic; the RNG is unused).
func CX(p1, p2 Chromosome, _ *rng.RNG) (Chromosome, Chromosome) {
	return CycleCrossover(p1, p2)
}

// PMX is partially mapped crossover (Goldberg & Lingle): a random
// segment is exchanged between the parents and the displaced symbols
// are repaired through the segment's bidirectional mapping. Children
// inherit the segment's absolute positions from the opposite parent
// and most other positions from their own.
func PMX(p1, p2 Chromosome, r *rng.RNG) (Chromosome, Chromosome) {
	n := len(p1)
	if n != len(p2) {
		panic(fmt.Sprintf("ga: PMX length mismatch %d vs %d", n, len(p2)))
	}
	if n < 2 {
		return p1.Clone(), p2.Clone()
	}
	lo := r.Intn(n)
	hi := r.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	return pmxChild(p1, p2, lo, hi), pmxChild(p2, p1, lo, hi)
}

// pmxChild builds one PMX child: base parent `a` with segment [lo,hi]
// replaced by b's, repairing duplicates via the mapping b[i] → a[i].
func pmxChild(a, b Chromosome, lo, hi int) Chromosome {
	n := len(a)
	child := a.Clone()
	// Mapping from the symbol placed into the child (from b) back to
	// the symbol it displaced (from a).
	mapping := make(map[int]int, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child[i] = b[i]
		mapping[b[i]] = a[i]
	}
	for i := 0; i < n; i++ {
		if i >= lo && i <= hi {
			continue
		}
		v := child[i]
		// Chase the mapping until the symbol is not present in the
		// copied segment; the chain terminates because each step maps
		// to a symbol displaced out of the segment.
		for {
			next, dup := mapping[v]
			if !dup {
				break
			}
			v = next
		}
		child[i] = v
	}
	return child
}

// OX is order crossover (Davis): a random segment is copied verbatim
// from each parent, and the remaining positions are filled with the
// other parent's symbols in their relative order, starting after the
// segment. It preserves relative order rather than absolute position.
func OX(p1, p2 Chromosome, r *rng.RNG) (Chromosome, Chromosome) {
	n := len(p1)
	if n != len(p2) {
		panic(fmt.Sprintf("ga: OX length mismatch %d vs %d", n, len(p2)))
	}
	if n < 2 {
		return p1.Clone(), p2.Clone()
	}
	lo := r.Intn(n)
	hi := r.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	return oxChild(p1, p2, lo, hi), oxChild(p2, p1, lo, hi)
}

// oxChild keeps a's segment [lo,hi] and fills the remaining positions
// (taken in cyclic order starting just past the segment) with b's
// symbols in the cyclic order they appear in b from the same point.
func oxChild(a, b Chromosome, lo, hi int) Chromosome {
	n := len(a)
	child := make(Chromosome, n)
	inSeg := make(map[int]struct{}, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		inSeg[a[i]] = struct{}{}
	}
	fill := make([]int, 0, n-(hi-lo+1))
	for k := 1; k <= n; k++ {
		if p := (hi + k) % n; p < lo || p > hi {
			fill = append(fill, p)
		}
	}
	fi := 0
	for k := 1; k <= n && fi < len(fill); k++ {
		v := b[(hi+k)%n]
		if _, used := inSeg[v]; used {
			continue
		}
		child[fill[fi]] = v
		fi++
	}
	return child
}
