package ga

import (
	"math"
	"testing"
	"testing/quick"

	"pnsched/internal/rng"
)

func TestRouletteEmpiricalDistribution(t *testing.T) {
	// Weights 1:2:7 → selection frequencies must match (paper §3.3:
	// slot size ςᵢ = Fᵢ/ΣFⱼ).
	fitness := []float64{1, 2, 7}
	r := rng.New(1)
	const draws = 100000
	counts := make([]int, 3)
	for _, idx := range RouletteWheel(fitness, draws, r) {
		counts[idx]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("individual %d selected %.3f, want %.3f", i, got, want[i])
		}
	}
}

func TestRouletteZeroWeightsUniform(t *testing.T) {
	fitness := []float64{0, 0, 0}
	r := rng.New(2)
	counts := make([]int, 3)
	for _, idx := range RouletteWheel(fitness, 30000, r) {
		counts[idx]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("degenerate wheel not uniform: counts[%d] = %d", i, c)
		}
	}
}

func TestRouletteSkipsZeroWeightIndividuals(t *testing.T) {
	fitness := []float64{0, 5, 0, 5, 0}
	r := rng.New(3)
	for _, idx := range RouletteWheel(fitness, 10000, r) {
		if idx != 1 && idx != 3 {
			t.Fatalf("selected zero-weight individual %d", idx)
		}
	}
}

func TestRouletteIgnoresPathologicalFitness(t *testing.T) {
	fitness := []float64{math.NaN(), 1, math.Inf(1), 1, -5}
	r := rng.New(4)
	for _, idx := range RouletteWheel(fitness, 5000, r) {
		if idx != 1 && idx != 3 {
			t.Fatalf("selected pathological individual %d", idx)
		}
	}
}

func TestRouletteEdgeCases(t *testing.T) {
	if got := RouletteWheel(nil, 5, rng.New(1)); got != nil {
		t.Errorf("empty fitness = %v, want nil", got)
	}
	if got := RouletteWheel([]float64{1}, 0, rng.New(1)); got != nil {
		t.Errorf("zero count = %v, want nil", got)
	}
	got := RouletteWheel([]float64{1}, 3, rng.New(1))
	if len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("single individual = %v", got)
	}
}

func TestCycleCrossoverKnownExample(t *testing.T) {
	// Classic CX example (Oliver et al.):
	p1 := Chromosome{1, 2, 3, 4, 5, 6, 7, 8}
	p2 := Chromosome{8, 5, 2, 1, 3, 6, 4, 7}
	c1, c2 := CycleCrossover(p1, p2)
	want1 := Chromosome{1, 5, 2, 4, 3, 6, 7, 8}
	want2 := Chromosome{8, 2, 3, 1, 5, 6, 4, 7}
	if !c1.Equal(want1) {
		t.Errorf("c1 = %v, want %v", c1, want1)
	}
	if !c2.Equal(want2) {
		t.Errorf("c2 = %v, want %v", c2, want2)
	}
}

func TestCycleCrossoverIdenticalParents(t *testing.T) {
	p := Chromosome{3, 1, 4, 2}
	c1, c2 := CycleCrossover(p, p)
	if !c1.Equal(p) || !c2.Equal(p) {
		t.Errorf("identical parents produced %v, %v", c1, c2)
	}
}

// CX invariants: children are permutations of the parent symbol set, and
// every child position holds one of the two parent values at that
// position (the defining property of cycle crossover).
func TestCycleCrossoverProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := rng.New(seed)
		// Symbols include negatives, mimicking delimiter symbols.
		symbols := make([]int, n)
		for i := range symbols {
			symbols[i] = i - n/2
		}
		p1 := make(Chromosome, n)
		p2 := make(Chromosome, n)
		perm1, perm2 := r.Perm(n), r.Perm(n)
		for i := 0; i < n; i++ {
			p1[i] = symbols[perm1[i]]
			p2[i] = symbols[perm2[i]]
		}
		c1, c2 := CycleCrossover(p1, p2)
		if !c1.IsPermutationOf(p1) || !c2.IsPermutationOf(p1) {
			return false
		}
		for i := 0; i < n; i++ {
			if c1[i] != p1[i] && c1[i] != p2[i] {
				return false
			}
			if c2[i] != p1[i] && c2[i] != p2[i] {
				return false
			}
			// Children are complementary: together they use both parent
			// values at each position.
			if c1[i] == p1[i] && c2[i] != p2[i] && p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCycleCrossoverPanicsOnMismatch(t *testing.T) {
	for _, pair := range [][2]Chromosome{
		{Chromosome{1, 2}, Chromosome{1, 2, 3}},
		{Chromosome{1, 2, 3}, Chromosome{1, 2, 4}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CycleCrossover(%v, %v) did not panic", pair[0], pair[1])
				}
			}()
			CycleCrossover(pair[0], pair[1])
		}()
	}
}

func TestSwapMutationChangesExactlyTwoPositions(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		orig := Chromosome{0, 1, 2, 3, 4, 5, 6, 7}
		c := orig.Clone()
		SwapMutation(c, r)
		if !c.IsPermutationOf(orig) {
			t.Fatalf("mutation broke permutation: %v", c)
		}
		diff := 0
		for i := range c {
			if c[i] != orig[i] {
				diff++
			}
		}
		if diff != 2 {
			t.Fatalf("mutation changed %d positions, want exactly 2: %v", diff, c)
		}
	}
}

func TestSwapMutationTinyChromosomes(t *testing.T) {
	r := rng.New(6)
	c := Chromosome{42}
	SwapMutation(c, r)
	if c[0] != 42 {
		t.Error("single-element chromosome mutated")
	}
	var empty Chromosome
	SwapMutation(empty, r) // must not panic
}
