// Package ga implements the genetic-algorithm machinery of §2–3 of the
// paper: permutation chromosomes, weighted roulette-wheel selection,
// cycle crossover (Oliver, Smith & Holland), random swap mutation, and
// the generation loop
//
//	initialise population
//	do {
//	    crossover
//	    random mutation
//	    selection
//	} while (stopping conditions not met)
//	return best individual
//
// The package is problem-agnostic: it operates on permutations of
// arbitrary integer symbols and delegates fitness to an Evaluator. The
// scheduler-specific encoding, fitness and rebalancing heuristic live in
// internal/core.
package ga

import "fmt"

// Chromosome is a permutation of distinct integer symbols. For the
// scheduling problem the symbols are task ids plus negative queue
// delimiters, but the GA machinery only relies on distinctness.
type Chromosome []int

// Clone returns an independent copy.
func (c Chromosome) Clone() Chromosome {
	out := make(Chromosome, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two chromosomes are identical.
func (c Chromosome) Equal(o Chromosome) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// IsPermutationOf reports whether c and o contain exactly the same
// multiset of symbols.
func (c Chromosome) IsPermutationOf(o Chromosome) bool {
	if len(c) != len(o) {
		return false
	}
	counts := make(map[int]int, len(c))
	for _, v := range c {
		counts[v]++
	}
	for _, v := range o {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	return true
}

// ValidatePermutation returns an error if the chromosome contains
// duplicate symbols. Crossover correctness depends on distinctness.
func (c Chromosome) ValidatePermutation() error {
	seen := make(map[int]struct{}, len(c))
	for i, v := range c {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("ga: duplicate symbol %d at position %d", v, i)
		}
		seen[v] = struct{}{}
	}
	return nil
}

// Evaluator scores chromosomes. Fitness must be positive and finite,
// with larger values indicating better individuals; the roulette wheel
// normalises internally, so any positive monotone scale works.
type Evaluator interface {
	Fitness(c Chromosome) float64
}

// EvaluatorFunc adapts a plain function to the Evaluator interface.
type EvaluatorFunc func(c Chromosome) float64

// Fitness implements Evaluator.
func (f EvaluatorFunc) Fitness(c Chromosome) float64 { return f(c) }
