package pnsched_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pnsched"
)

// fastServeSpec is a PN spec trimmed so every batch schedules in well
// under a second.
func fastServeSpec(t *testing.T) pnsched.Spec {
	t.Helper()
	spec, err := pnsched.NewSpec("PN",
		pnsched.WithGenerations(40),
		pnsched.WithBatch(40),
		pnsched.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestServeEndToEnd drives the whole public distributed API: Serve a
// PN scheduler, connect two workers with RunWorker, watch the run from
// two Watch clients, and check completion, per-worker stats, and that
// both remote observers saw the same number of dispatches as tasks.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv, err := pnsched.Serve(ctx, fastServeSpec(t),
		pnsched.WithEventQueue(1<<16))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	type counts struct {
		mu                  sync.Mutex
		batches, dispatches int
	}
	var seen [2]counts
	var watchers [2]*pnsched.Watcher
	for i := range watchers {
		c := &seen[i]
		w, err := pnsched.Watch(ctx, addr, pnsched.ObserverFuncs{
			BatchDecided: func(pnsched.BatchDecision) {
				c.mu.Lock()
				c.batches++
				c.mu.Unlock()
			},
			Dispatch: func(pnsched.DispatchEvent) {
				c.mu.Lock()
				c.dispatches++
				c.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("Watch %d: %v", i, err)
		}
		watchers[i] = w
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Watchers != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watchers never subscribed: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	for _, w := range []struct {
		name string
		rate pnsched.Rate
	}{{"slow", 50}, {"fast", 200}} {
		wg.Add(1)
		go func(name string, rate pnsched.Rate) {
			defer wg.Done()
			err := pnsched.RunWorker(ctx, addr, pnsched.WorkerConfig{
				Name: name, Rate: rate, TimeScale: 2e-4,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s: %v", name, err)
			}
		}(w.name, w.rate)
	}
	for srv.Stats().Workers != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	tasks := pnsched.GenerateTasks(100, pnsched.Uniform{Lo: 10, Hi: 1000}, pnsched.NewRNG(7))
	srv.Submit(tasks)
	if err := srv.Wait(30 * time.Second); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st := srv.Stats()
	if st.Completed != len(tasks) || st.Submitted != len(tasks) {
		t.Fatalf("Stats = %+v, want %d submitted and completed", st, len(tasks))
	}
	ws := srv.Workers()
	total := 0
	for _, w := range ws {
		total += w.Completed
	}
	if len(ws) != 2 || total != len(tasks) {
		t.Fatalf("Workers() = %+v, want 2 workers totalling %d completions", ws, len(tasks))
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, w := range watchers {
		if err := w.Wait(); err != nil {
			t.Fatalf("watcher %d Wait: %v", i, err)
		}
		if d := w.Dropped(); d != 0 {
			t.Errorf("watcher %d dropped %d frames", i, d)
		}
		seen[i].mu.Lock()
		b, d := seen[i].batches, seen[i].dispatches
		seen[i].mu.Unlock()
		if d != len(tasks) {
			t.Errorf("watcher %d saw %d dispatches, want %d", i, d, len(tasks))
		}
		if b == 0 {
			t.Errorf("watcher %d saw no batch decisions", i)
		}
	}

	cancel()
	wg.Wait()
}

// TestServeSnapshotAndReplay drives the operability surface of the
// public API in one run: a late Watch subscriber catching up on the
// server's replay ring (WithEventReplay) and the stats snapshot, both
// in-process (Server.Snapshot) and over the wire (FetchStats).
func TestServeSnapshotAndReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv, err := pnsched.Serve(ctx, fastServeSpec(t),
		pnsched.WithEventQueue(1<<16),
		pnsched.WithEventReplay(1<<16))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := pnsched.RunWorker(ctx, addr, pnsched.WorkerConfig{
			Name: "only", Rate: 100, TimeScale: 2e-4,
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Workers != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Run a full workload to completion with nobody watching.
	tasks := pnsched.GenerateTasks(60, pnsched.Uniform{Lo: 10, Hi: 1000}, pnsched.NewRNG(7))
	srv.Submit(tasks)
	if err := srv.Wait(30 * time.Second); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	// A watcher arriving after the fact still sees the whole run: the
	// replay ring is larger than the event count, so every dispatch
	// replays into its Observer.
	var mu sync.Mutex
	dispatches, joins := 0, 0
	w, err := pnsched.Watch(ctx, addr, pnsched.ObserverFuncs{
		Dispatch: func(pnsched.DispatchEvent) {
			mu.Lock()
			dispatches++
			mu.Unlock()
		},
		WorkerJoined: func(pnsched.WorkerJoinedEvent) {
			mu.Lock()
			joins++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	for {
		mu.Lock()
		d := dispatches
		mu.Unlock()
		if d == len(tasks) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late watcher replayed %d dispatches, want %d", d, len(tasks))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if joins != 1 {
		t.Errorf("late watcher replayed %d worker_joined events, want 1", joins)
	}
	mu.Unlock()
	if d := w.Dropped(); d != 0 {
		t.Errorf("replay counted %d drops; history must not count as dropped", d)
	}

	// Snapshot: the in-process and over-the-wire views agree on the
	// completed run.
	snap := srv.Snapshot()
	remote, err := pnsched.FetchStats(ctx, addr)
	if err != nil {
		t.Fatalf("FetchStats: %v", err)
	}
	for _, s := range []pnsched.ServerSnapshot{snap, remote} {
		if s.Submitted != len(tasks) || s.Completed != len(tasks) || s.Pending != 0 || s.Running != 0 {
			t.Errorf("snapshot counters = %+v, want %d submitted and completed, none in flight", s, len(tasks))
		}
		if len(s.Workers) != 1 || s.Workers[0].Completed != len(tasks) {
			t.Errorf("snapshot workers = %+v, want one worker with %d completions", s.Workers, len(tasks))
		}
		if s.Latency.Samples == 0 || s.Latency.P50 <= 0 {
			t.Errorf("snapshot latency %+v, want populated quantiles", s.Latency)
		}
		if s.Batches == 0 || s.Uptime <= 0 {
			t.Errorf("snapshot batches=%d uptime=%v, want both positive", s.Batches, s.Uptime)
		}
	}
	if len(remote.Watchers) != 1 {
		t.Errorf("remote snapshot watchers = %+v, want the one live watcher", remote.Watchers)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Wait(); err != nil {
		t.Fatalf("watcher Wait: %v", err)
	}
	cancel()
	wg.Wait()
}

// TestServeRejectsImmediateSchedulers checks the one rule Serve adds
// on top of Run's validation: immediate-mode schedulers have no batch
// form for the live server to drive.
func TestServeRejectsImmediateSchedulers(t *testing.T) {
	for _, name := range []string{"EF", "LL", "RR", "MET", "OLB", "KPB"} {
		srv, err := pnsched.Serve(context.Background(), pnsched.MustSpec(name))
		if err == nil {
			srv.Close()
			t.Errorf("Serve accepted immediate-mode scheduler %s", name)
			continue
		}
		if !strings.Contains(err.Error(), "immediate-mode") {
			t.Errorf("Serve(%s) error %q does not explain the batch requirement", name, err)
		}
	}
}

// TestServeValidationParity feeds the same invalid Specs to Run and
// Serve and requires identical rejections: both funnel through the
// shared Validate, so a spec that cannot run in the simulator cannot
// be served live either — with the same explanation.
func TestServeValidationParity(t *testing.T) {
	w, err := pnsched.GenerateWorkload(pnsched.WorkloadConfig{Tasks: 5, Procs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	four := 4
	zero := 0
	cases := []struct {
		name string
		spec pnsched.Spec
	}{
		{"empty name", pnsched.Spec{}},
		{"unknown name", pnsched.Spec{Name: "NOPE"}},
		{"negative generations", pnsched.Spec{Name: "PN", Generations: -1}},
		{"negative population", pnsched.Spec{Name: "PN", Population: -3}},
		{"negative batch", pnsched.Spec{Name: "PN", Batch: -200}},
		{"island fields on PN", pnsched.Spec{Name: "PN", Islands: &four}},
		{"migrants on ZO", pnsched.Spec{Name: "ZO", Migrants: 2}},
		{"zero islands", pnsched.Spec{Name: "PN-ISLAND", Islands: &zero}},
		{"negative migration interval", pnsched.Spec{Name: "PN-ISLAND", MigrationInterval: -5}},
		{"migrants not below population", pnsched.Spec{Name: "PN-ISLAND", Population: 10, Migrants: 10}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, runErr := pnsched.Run(context.Background(), c.spec, w)
			srv, serveErr := pnsched.Serve(context.Background(), c.spec)
			if serveErr == nil {
				srv.Close()
				t.Fatalf("Serve accepted a spec Run rejects with %q", runErr)
			}
			if runErr == nil {
				t.Fatalf("Run accepted a spec Serve rejects with %q", serveErr)
			}
			if runErr.Error() != serveErr.Error() {
				t.Errorf("divergent rejections:\n  Run:   %v\n  Serve: %v", runErr, serveErr)
			}
		})
	}
}

// TestServeContextCancel checks cancelling the Serve context closes
// the server: Wait unblocks with ErrServerClosed.
func TestServeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := pnsched.Serve(ctx, fastServeSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Submit(pnsched.GenerateTasks(5, pnsched.Constant{Size: 100}, pnsched.NewRNG(1)))
	errc := make(chan error, 1)
	go func() { errc <- srv.Wait(0) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, pnsched.ErrServerClosed) {
			t.Fatalf("Wait after ctx cancel = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not unblock after ctx cancel")
	}
}
