package pnsched

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestNewSpecOptions(t *testing.T) {
	spec, err := NewSpec("pn-island",
		WithGenerations(500),
		WithPopulation(30),
		WithRebalances(2),
		WithBatch(100),
		WithDynamicBatch(true),
		WithIslands(4),
		WithMigrationInterval(10),
		WithMigrants(3),
		WithSeed(7),
		WithIncremental(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Generations != 500 || spec.Population != 30 || spec.Rebalances != 2 ||
		spec.Batch != 100 || !spec.DynamicBatch || spec.Seed != 7 {
		t.Errorf("options not applied: %+v", spec)
	}
	if spec.Islands == nil || *spec.Islands != 4 || spec.MigrationInterval != 10 || spec.Migrants != 3 {
		t.Errorf("island options not applied: %+v", spec)
	}
	if spec.Incremental == nil || *spec.Incremental {
		t.Errorf("WithIncremental(false) not applied: %+v", spec)
	}
	cfg := spec.gaConfig()
	if cfg.Generations != 500 || cfg.Population != 30 || cfg.Rebalances != 2 ||
		cfg.InitialBatch != 100 || cfg.FixedBatch || !cfg.NaiveEvaluation {
		t.Errorf("gaConfig lowering wrong: %+v", cfg)
	}
	icfg := spec.islandConfig()
	if icfg.Islands != 4 || icfg.MigrationInterval != 10 || icfg.Migrants != 3 {
		t.Errorf("islandConfig lowering wrong: %+v", icfg)
	}
}

func TestSpecDefaultsLowering(t *testing.T) {
	cfg := Spec{Name: "PN"}.gaConfig()
	if cfg.Generations != 1000 || cfg.Population != 20 || cfg.Rebalances != 1 ||
		cfg.InitialBatch != 200 || !cfg.FixedBatch || cfg.NaiveEvaluation {
		t.Errorf("zero Spec must lower onto paper defaults: %+v", cfg)
	}
	// Negative rebalances is the pure-GA ablation.
	if cfg := (Spec{Name: "PN", Rebalances: -1}).gaConfig(); cfg.Rebalances != 0 {
		t.Errorf("negative rebalances lowered to %d, want 0", cfg.Rebalances)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]struct {
		spec Spec
		want string // error substring; empty = valid
	}{
		"valid PN":             {Spec{Name: "PN", Generations: 50}, ""},
		"valid island":         {MustSpec("PN-ISLAND", WithIslands(2)), ""},
		"empty name":           {Spec{}, "name required"},
		"unknown":              {Spec{Name: "WAT"}, "unknown scheduler"},
		"neg generations":      {Spec{Name: "PN", Generations: -1}, "negative generations"},
		"neg population":       {Spec{Name: "PN", Population: -1}, "negative population"},
		"neg batch":            {Spec{Name: "PN", Batch: -1}, "negative batch"},
		"zero islands":         {Spec{Name: "pn-island", Islands: intp(0)}, "islands >= 1"},
		"neg interval":         {Spec{Name: "pn-island", MigrationInterval: -1}, "migration_interval"},
		"migrants >= pop":      {Spec{Name: "pn-island", Population: 10, Migrants: 10}, "smaller than the population"},
		"island fields on PN":  {Spec{Name: "PN", Islands: intp(2)}, "only apply"},
		"migrants on EF":       {Spec{Name: "EF", Migrants: 2}, "only apply"},
		"interval on MM":       {Spec{Name: "MM", MigrationInterval: 5}, "only apply"},
		"case-insensitive":     {Spec{Name: "Pn-IsLaNd", MigrationInterval: 5}, ""},
		"migrants default pop": {Spec{Name: "pn-island", Migrants: 20}, "smaller than the population"},
	}
	for name, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func intp(n int) *int { return &n }

// TestSpecJSONRoundTrip: a Spec marshals to JSON and back unchanged —
// the property that lets one value back scenario files, flags and
// library calls.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{Name: "PN"},
		{Name: "EF"},
		MustSpec("PN", WithGenerations(500), WithBatch(100), WithDynamicBatch(true), WithSeed(9)),
		MustSpec("pn-island", WithIslands(4), WithMigrationInterval(10), WithMigrants(3), WithPopulation(30)),
		MustSpec("KPB", WithK(40)),
		MustSpec("ZO", WithIncremental(false), WithRebalances(-1)),
	}
	for _, spec := range specs {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		var again Spec
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&again); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", spec.Name, raw, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("%s: round-trip changed the spec:\n%+v\n%+v\n%s", spec.Name, spec, again, raw)
		}
	}
}

// TestSpecJSONOmitsDefaults: the zero fields stay out of the wire
// form, so minimal scenario files stay minimal when re-marshalled.
func TestSpecJSONOmitsDefaults(t *testing.T) {
	raw, err := json.Marshal(Spec{Name: "PN"})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"name":"PN"}` {
		t.Errorf("zero spec marshals to %s", raw)
	}
}
