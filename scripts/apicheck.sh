#!/bin/sh
# apicheck: the layering gate of the public pnsched API.
#
# Binaries and examples must construct schedulers through the public
# registry (pnsched.New / pnsched.Spec), never by importing the GA
# internals directly — otherwise the registry stops being the single
# construction surface and scheduler changes ripple back into every
# call site. The same holds for the live runtime: pnsched.Serve /
# Watch / RunWorker are the public surface of internal/dist, so a cmd
# or example importing dist directly would bypass the Spec validation
# and observer wiring Serve guarantees. This script fails if any
# package under cmd/ or examples/ directly imports
# pnsched/internal/core, pnsched/internal/ga, or pnsched/internal/dist.
#
# Run via `make apicheck` (which also vets) or directly:
#
#	sh scripts/apicheck.sh
set -eu

cd "$(dirname "$0")/.."

banned='pnsched/internal/core pnsched/internal/ga pnsched/internal/dist'
status=0

for pkg in $(go list ./cmd/... ./examples/...); do
	imports=$(go list -f '{{range .Imports}}{{.}}
{{end}}{{range .TestImports}}{{.}}
{{end}}{{range .XTestImports}}{{.}}
{{end}}' "$pkg")
	for bad in $banned; do
		if printf '%s\n' "$imports" | grep -qx "$bad"; then
			echo "apicheck: $pkg imports $bad directly; construct schedulers via the pnsched registry instead" >&2
			status=1
		fi
	done
done

if [ "$status" -eq 0 ]; then
	echo "apicheck: cmd/ and examples/ are clean of internal/core, internal/ga and internal/dist imports"
fi
exit "$status"
