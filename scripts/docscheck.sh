#!/bin/sh
# docscheck: keeps the wire-protocol documentation honest.
#
# The protocol's message types and event kinds are string constants in
# internal/dist/protocol.go; README.md and docs/wire-protocol.md each
# carry a table of the event kinds (between wire-kinds markers) and
# the spec additionally tables the message types (wire-messages
# markers). This script fails when they drift in either direction:
#
#   - a constant in protocol.go missing from a documented table
#     (someone added a kind without documenting it), or
#   - a documented kind/type with no backing constant (someone renamed
#     or removed a kind and left the docs behind).
#
# Run via `make docs-check` or directly:
#
#	sh scripts/docscheck.sh
set -eu

cd "$(dirname "$0")/.."

proto=internal/dist/protocol.go
spec=docs/wire-protocol.md
readme=README.md
status=0

# Constants, from the two dedicated const blocks in protocol.go.
kinds=$(sed -n 's/^[[:space:]]*kind[A-Za-z]* *= *"\([a-z_]*\)".*/\1/p' "$proto")
types=$(sed -n 's/^[[:space:]]*msg[A-Za-z]* *= *"\([a-z_]*\)".*/\1/p' "$proto")

[ -n "$kinds" ] || { echo "docscheck: no event kinds found in $proto" >&2; exit 1; }
[ -n "$types" ] || { echo "docscheck: no message types found in $proto" >&2; exit 1; }

# marked_cells FILE MARKER — the first-column `code` cells of the
# markdown table between <!-- MARKER:begin --> and <!-- MARKER:end -->.
marked_cells() {
	sed -n "/<!-- $2:begin -->/,/<!-- $2:end -->/p" "$1" |
		sed -n 's/^| `\([a-z_]*\)`.*/\1/p'
}

check_table() { # FILE MARKER WANT-LIST LABEL
	file=$1 marker=$2 want=$3 label=$4
	have=$(marked_cells "$file" "$marker")
	if [ -z "$have" ]; then
		echo "docscheck: $file has no $marker table (markers missing?)" >&2
		status=1
		return
	fi
	for w in $want; do
		if ! printf '%s\n' "$have" | grep -qx "$w"; then
			echo "docscheck: $label \"$w\" ($proto) is missing from the $marker table in $file" >&2
			status=1
		fi
	done
	for h in $have; do
		if ! printf '%s\n' "$want" | grep -qx "$h"; then
			echo "docscheck: $file documents $label \"$h\" which $proto does not define" >&2
			status=1
		fi
	done
}

check_table "$readme" wire-kinds "$kinds" "event kind"
check_table "$spec" wire-kinds "$kinds" "event kind"
check_table "$spec" wire-messages "$types" "message type"

# Every event kind's golden file must exist and be referenced by the
# spec's examples (the spec promises each kind is illustrated by one).
for k in $kinds; do
	golden=internal/dist/testdata/golden/event_$k.json
	if [ ! -f "$golden" ]; then
		echo "docscheck: event kind \"$k\" has no golden file $golden" >&2
		status=1
	elif ! grep -qF "\"kind\":\"$k\"" "$spec"; then
		echo "docscheck: $spec shows no example frame for event kind \"$k\"" >&2
		status=1
	fi
done

# The request/reply messages (stats 1.1, trace 1.2) each pin their
# reply encoding in a golden file the spec must cite and illustrate.
for m in stats trace; do
	golden=internal/dist/testdata/golden/${m}_reply.json
	if [ ! -f "$golden" ]; then
		echo "docscheck: message type \"$m\" has no reply golden $golden" >&2
		status=1
	elif ! grep -qF "${m}_reply.json" "$spec"; then
		echo "docscheck: $spec does not cite the ${m}_reply.json golden" >&2
		status=1
	elif ! grep -qF "{\"type\":\"$m\"}" "$spec"; then
		echo "docscheck: $spec shows no bare \"$m\" request example" >&2
		status=1
	fi
done

# The job exchanges (1.3) likewise: each message pins its reply golden
# which the spec must cite, and shows a request example. The in-band
# error form has its own golden.
for m in job_submit job_status job_cancel job_result; do
	golden=internal/dist/testdata/golden/${m}_reply.json
	if [ ! -f "$golden" ]; then
		echo "docscheck: message type \"$m\" has no reply golden $golden" >&2
		status=1
	elif ! grep -qF "${m}_reply.json" "$spec"; then
		echo "docscheck: $spec does not cite the ${m}_reply.json golden" >&2
		status=1
	elif ! grep -qF "{\"type\":\"$m\"" "$spec"; then
		echo "docscheck: $spec shows no \"$m\" request example" >&2
		status=1
	fi
done
if [ ! -f internal/dist/testdata/golden/job_error_reply.json ]; then
	echo "docscheck: the job error form has no golden job_error_reply.json" >&2
	status=1
elif ! grep -qF "job_error_reply.json" "$spec"; then
	echo "docscheck: $spec does not cite the job_error_reply.json golden" >&2
	status=1
fi

# Every job state the dispatcher defines must appear in the spec's
# state-machine prose (and vice versa is covered by the constants
# being the single source the dispatcher runs on).
jobsrc=internal/jobs/jobs.go
states=$(sed -n 's/^[[:space:]]*State[A-Za-z]* *= *"\([a-z]*\)".*/\1/p' "$jobsrc")
[ -n "$states" ] || { echo "docscheck: no job states found in $jobsrc" >&2; exit 1; }
for s in $states; do
	if ! grep -qF "\`$s\`" "$spec"; then
		echo "docscheck: job state \"$s\" ($jobsrc) is missing from $spec" >&2
		status=1
	fi
done

if [ "$status" -eq 0 ]; then
	echo "docscheck: README.md and docs/wire-protocol.md agree with $proto ($(printf '%s\n' "$types" | wc -l | tr -d ' ') message types, $(printf '%s\n' "$kinds" | wc -l | tr -d ' ') event kinds)"
fi
exit "$status"
