#!/bin/sh
# adminsmoke: end-to-end smoke test of the HTTP admin endpoint.
#
# Starts a short-lived pnserver with -admin, curls /healthz and
# /metrics, and asserts the scrape is Prometheus exposition format
# carrying the pnsched instrument families. No workers connect; the
# point is that the admin plane answers independently of scheduling
# traffic. Run via `make admin-smoke`.
set -eu

cd "$(dirname "$0")/.."

addr=${ADMINSMOKE_ADDR:-127.0.0.1:19724}
base="http://$addr"

fetch() { # URL
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1"
	elif command -v wget >/dev/null 2>&1; then
		wget -qO- "$1"
	else
		echo "adminsmoke: neither curl nor wget available" >&2
		exit 2
	fi
}

bin=$(mktemp -d)/pnserver
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/pnserver

"$bin" -listen 127.0.0.1:0 -admin "$addr" -tasks 50 -quiet &
pid=$!

# Wait for the admin listener.
i=0
until fetch "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "adminsmoke: admin endpoint $addr never came up" >&2
		exit 1
	fi
	sleep 0.1
done

health=$(fetch "$base/healthz")
[ "$health" = "ok" ] || { echo "adminsmoke: /healthz said \"$health\", want ok" >&2; exit 1; }

metrics=$(fetch "$base/metrics")
for family in \
	pnsched_tasks_submitted_total \
	pnsched_pending_tasks \
	pnsched_workers \
	pnsched_dispatch_latency_seconds \
	pnsched_ga_runs_total; do
	if ! printf '%s\n' "$metrics" | grep -q "^# TYPE $family "; then
		echo "adminsmoke: /metrics missing family $family" >&2
		printf '%s\n' "$metrics" | head -20 >&2
		exit 1
	fi
done
if ! printf '%s\n' "$metrics" | grep -q "^pnsched_tasks_submitted_total 50$"; then
	echo "adminsmoke: /metrics does not show the 50 submitted tasks" >&2
	exit 1
fi

echo "adminsmoke: /healthz and /metrics OK on $addr"
