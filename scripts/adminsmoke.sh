#!/bin/sh
# adminsmoke: end-to-end smoke test of the HTTP admin endpoint.
#
# Phase 1 starts a short-lived pnserver with -admin, curls /healthz
# and /metrics, and asserts the scrape is Prometheus exposition format
# carrying the pnsched instrument families. No workers connect; the
# point is that the admin plane answers independently of scheduling
# traffic.
#
# Phase 2 does the same for the job dispatcher: pnserver -jobs plus
# one pnworker, a job submitted and run to completion with pnjobs,
# and the pnsched_jobs_* families asserted non-zero on /metrics.
#
# Phase 3 proves the job journal survives a real crash: a dispatcher
# started with -journal runs a job to completion, dies by kill -9,
# restarts on the same directory, and must still answer pnjobs status
# for the pre-kill job — with the pnsched_jobs_journal_* metrics
# non-zero on the restarted instance.
# Run via `make admin-smoke`.
set -eu

cd "$(dirname "$0")/.."

addr=${ADMINSMOKE_ADDR:-127.0.0.1:19724}
base="http://$addr"

fetch() { # URL
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1"
	elif command -v wget >/dev/null 2>&1; then
		wget -qO- "$1"
	else
		echo "adminsmoke: neither curl nor wget available" >&2
		exit 2
	fi
}

bindir=$(mktemp -d)
# $pids is word-split on purpose; empty stages drop out of the kill.
trap 'for p in $pid $jobspid $workerpid; do kill "$p" 2>/dev/null || true; done; rm -rf "$bindir"' EXIT
pid= jobspid= workerpid=
go build -o "$bindir" ./cmd/pnserver ./cmd/pnworker ./cmd/pnjobs

"$bindir/pnserver" -listen 127.0.0.1:0 -admin "$addr" -tasks 50 -quiet &
pid=$!

# Wait for the admin listener.
i=0
until fetch "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "adminsmoke: admin endpoint $addr never came up" >&2
		exit 1
	fi
	sleep 0.1
done

health=$(fetch "$base/healthz")
[ "$health" = "ok" ] || { echo "adminsmoke: /healthz said \"$health\", want ok" >&2; exit 1; }

metrics=$(fetch "$base/metrics")
for family in \
	pnsched_tasks_submitted_total \
	pnsched_pending_tasks \
	pnsched_workers \
	pnsched_dispatch_latency_seconds \
	pnsched_ga_runs_total; do
	if ! printf '%s\n' "$metrics" | grep -q "^# TYPE $family "; then
		echo "adminsmoke: /metrics missing family $family" >&2
		printf '%s\n' "$metrics" | head -20 >&2
		exit 1
	fi
done
if ! printf '%s\n' "$metrics" | grep -q "^pnsched_tasks_submitted_total 50$"; then
	echo "adminsmoke: /metrics does not show the 50 submitted tasks" >&2
	exit 1
fi

kill "$pid" 2>/dev/null || true
pid=

echo "adminsmoke: /healthz and /metrics OK on $addr"

# ---- phase 2: the job dispatcher ----

jobsaddr=${ADMINSMOKE_JOBS_ADDR:-127.0.0.1:19725}
jobsadmin=${ADMINSMOKE_JOBS_ADMIN:-127.0.0.1:19726}
jobsbase="http://$jobsadmin"

"$bindir/pnserver" -jobs -listen "$jobsaddr" -admin "$jobsadmin" \
	-policy fair -weights 'gold=3,free=1' -quiet &
jobspid=$!

i=0
until fetch "$jobsbase/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "adminsmoke: dispatcher admin endpoint $jobsadmin never came up" >&2
		exit 1
	fi
	sleep 0.1
done

"$bindir/pnworker" -connect "$jobsaddr" -rate 200 -timescale 0.0002 &
workerpid=$!

"$bindir/pnjobs" -addr "$jobsaddr" submit -tenant gold -tasks 40 -wait >/dev/null

metrics=$(fetch "$jobsbase/metrics")
for family in \
	pnsched_jobs_submitted_total \
	pnsched_jobs_finished_total \
	pnsched_jobs_tasks_completed_total \
	pnsched_jobs_batches_total \
	pnsched_jobs_workers \
	pnsched_jobs_queue_depth; do
	if ! printf '%s\n' "$metrics" | grep -q "^# TYPE $family "; then
		echo "adminsmoke: dispatcher /metrics missing family $family" >&2
		printf '%s\n' "$metrics" | head -20 >&2
		exit 1
	fi
done
for want in \
	'^pnsched_jobs_submitted_total 1$' \
	'^pnsched_jobs_finished_total{state="done"} 1$' \
	'^pnsched_jobs_tasks_completed_total 40$' \
	'^pnsched_jobs_workers 1$'; do
	if ! printf '%s\n' "$metrics" | grep -q "$want"; then
		echo "adminsmoke: dispatcher /metrics does not match $want" >&2
		printf '%s\n' "$metrics" | grep '^pnsched_jobs' >&2 || true
		exit 1
	fi
done

echo "adminsmoke: dispatcher ran 1 job and exported pnsched_jobs_* on $jobsadmin"

kill "$jobspid" 2>/dev/null || true
kill "$workerpid" 2>/dev/null || true
jobspid= workerpid=
wait 2>/dev/null || true

# ---- phase 3: journal crash-restart ----

jrnladdr=${ADMINSMOKE_JOURNAL_ADDR:-127.0.0.1:19727}
jrnladmin=${ADMINSMOKE_JOURNAL_ADMIN:-127.0.0.1:19728}
jrnlbase="http://$jrnladmin"
jrnldir="$bindir/journal"

"$bindir/pnserver" -jobs -listen "$jrnladdr" -admin "$jrnladmin" \
	-journal "$jrnldir" -quiet &
jobspid=$!

i=0
until fetch "$jrnlbase/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "adminsmoke: journaled dispatcher admin $jrnladmin never came up" >&2
		exit 1
	fi
	sleep 0.1
done

"$bindir/pnworker" -connect "$jrnladdr" -rate 200 -timescale 0.0002 &
workerpid=$!

jobid=$("$bindir/pnjobs" -addr "$jrnladdr" submit -tasks 40 -wait | awk 'NR==1{print $1}')
[ -n "$jobid" ] || { echo "adminsmoke: journaled submit printed no job id" >&2; exit 1; }

# The crash: SIGKILL, no shutdown path runs. The journal already holds
# every acknowledged transition.
kill -9 "$jobspid" 2>/dev/null || true
wait "$jobspid" 2>/dev/null || true
jobspid=

"$bindir/pnserver" -jobs -listen "$jrnladdr" -admin "$jrnladmin" \
	-journal "$jrnldir" -quiet &
jobspid=$!

i=0
until fetch "$jrnlbase/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "adminsmoke: restarted dispatcher admin $jrnladmin never came up" >&2
		exit 1
	fi
	sleep 0.1
done

status=$("$bindir/pnjobs" -addr "$jrnladdr" status "$jobid")
if ! printf '%s\n' "$status" | grep -q "state=done"; then
	echo "adminsmoke: pre-kill job $jobid not done after restart: $status" >&2
	exit 1
fi

# A post-restart submission appends fresh records and must get a
# never-used ID — the counter is durable too.
newid=$("$bindir/pnjobs" -addr "$jrnladdr" submit -tasks 5 | awk 'NR==1{print $1}')
if [ -z "$newid" ] || [ "$newid" = "$jobid" ]; then
	echo "adminsmoke: post-restart submission got id \"$newid\" (pre-kill was $jobid)" >&2
	exit 1
fi

metrics=$(fetch "$jrnlbase/metrics")
for want in \
	'^pnsched_jobs_journal_records_total [1-9]' \
	'^pnsched_jobs_journal_bytes_total [1-9]' \
	'^pnsched_jobs_journal_snapshots_total [1-9]' \
	'^pnsched_jobs_journal_replay_seconds [0-9.e+-]*[1-9]'; do
	if ! printf '%s\n' "$metrics" | grep -q "$want"; then
		echo "adminsmoke: restarted /metrics does not match $want" >&2
		printf '%s\n' "$metrics" | grep '^pnsched_jobs_journal' >&2 || true
		exit 1
	fi
done

echo "adminsmoke: journaled dispatcher survived kill -9; $jobid still done after restart"
