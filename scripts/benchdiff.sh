#!/bin/sh
# benchdiff: the benchmark regression gate.
#
# Compares a freshly generated pnbench JSON record against the
# committed baseline and fails when any row's wall-clock time regressed
# by more than the threshold. Rows are keyed by (result name, first
# column) — for BENCH_evolve.json that is ("evolve", engine) — and
# compared on the "wall[ms]" column, located by header so column
# reordering cannot silently compare the wrong numbers.
#
# Usage:
#
#	sh scripts/benchdiff.sh BASELINE.json FRESH.json...
#
# With several FRESH files (make bench-diff generates three) each row
# compares against its *minimum* fresh wall: the minimum of repeated
# runs filters scheduler and load spikes, which on a busy machine
# dwarf real regressions — a single-shot comparison would flag noise.
# The threshold defaults to 15 (%); BENCHDIFF_MAX_PCT overrides it.
# Rows present in only one side are reported but do not fail the gate
# (adding or retiring an engine is a reviewed change, not a
# regression). Run via `make bench-diff`.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: sh scripts/benchdiff.sh BASELINE.json FRESH.json..." >&2
	exit 2
fi
baseline=$1
shift
maxpct=${BENCHDIFF_MAX_PCT:-15}

command -v jq >/dev/null 2>&1 || {
	echo "benchdiff: jq not found; skipping benchmark gate" >&2
	exit 0
}
[ -f "$baseline" ] || { echo "benchdiff: no baseline $baseline" >&2; exit 2; }
for f in "$@"; do
	[ -f "$f" ] || { echo "benchdiff: no fresh record $f" >&2; exit 2; }
done

# walls FILE... — "result/rowkey wall_ms" per row, via the wall[ms]
# header column; repeated keys keep the minimum.
walls() {
	jq -r '.results[]
		| (.header | index("wall[ms]")) as $w
		| select($w != null)
		| .name as $n
		| .rows[]
		| "\($n)/\(.[0]) \(.[$w])"' "$@" |
		awk '{ if (!($1 in min) || $2 + 0 < min[$1] + 0) min[$1] = $2 }
		     END { for (k in min) print k, min[k] }' | sort
}

walls "$baseline" >/tmp/benchdiff_base.$$
walls "$@" >/tmp/benchdiff_fresh.$$
trap 'rm -f /tmp/benchdiff_base.$$ /tmp/benchdiff_fresh.$$' EXIT

status=0
while read -r key base; do
	new=$(awk -v k="$key" '$1 == k { print $2 }' /tmp/benchdiff_fresh.$$)
	if [ -z "$new" ]; then
		echo "benchdiff: $key present in baseline only (not a failure)"
		continue
	fi
	verdict=$(awk -v b="$base" -v n="$new" -v m="$maxpct" 'BEGIN {
		pct = (b > 0) ? (n - b) / b * 100 : 0
		printf "%+.1f%% (%.3fms -> %.3fms) ", pct, b, n
		print (pct > m) ? "REGRESSED" : "ok"
	}')
	case $verdict in
	*REGRESSED)
		echo "benchdiff: $key wall $verdict (limit +$maxpct%)" >&2
		status=1
		;;
	*)
		echo "benchdiff: $key wall $verdict"
		;;
	esac
done </tmp/benchdiff_base.$$

while read -r key _; do
	if ! awk -v k="$key" '$1 == k { found = 1 } END { exit !found }' /tmp/benchdiff_base.$$; then
		echo "benchdiff: $key is new in the fresh record (not a failure)"
	fi
done </tmp/benchdiff_fresh.$$

if [ "$status" -ne 0 ]; then
	echo "benchdiff: wall-clock regression beyond +$maxpct% against $baseline" >&2
	echo "benchdiff: if intentional, regenerate the baseline with: make bench-smoke" >&2
fi
exit "$status"
