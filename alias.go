package pnsched

import (
	"io"

	"pnsched/internal/cluster"
	"pnsched/internal/dist"
	"pnsched/internal/linpack"
	"pnsched/internal/network"
	"pnsched/internal/observe"
	"pnsched/internal/rng"
	"pnsched/internal/sched"
	"pnsched/internal/sim"
	"pnsched/internal/task"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

// The library vocabulary, re-exported as aliases so external importers
// can use every public API without naming internal packages. The
// underlying types live in internal/ and remain the single definition;
// the aliases are identical types, not wrappers.
type (
	// Task is one unit of work: an ID, a size in MFLOPs, and an
	// arrival time.
	Task = task.Task
	// TaskID identifies a task.
	TaskID = task.ID

	// Scheduler is the common scheduler interface: every scheduler
	// has a short name used in result tables.
	Scheduler = sched.Scheduler
	// ImmediateScheduler maps one task at a time, FCFS.
	ImmediateScheduler = sched.Immediate
	// BatchScheduler maps a whole batch of tasks at once and reports
	// the modelled compute time the decision consumed.
	BatchScheduler = sched.Batch
	// BatchSizer lets a batch scheduler size its own batches (§3.7).
	BatchSizer = sched.BatchSizer
	// State is a scheduler's view of the system at decision time.
	State = sched.State
	// Assignment is a batch decision: Assignment[j] is the ordered
	// task list appended to processor j's queue.
	Assignment = sched.Assignment

	// Cluster is a set of (possibly availability-varying)
	// heterogeneous processors.
	Cluster = cluster.Cluster
	// Network models per-link communication costs.
	Network = network.Network
	// NetworkConfig parametrises a Network.
	NetworkConfig = network.Config

	// RNG is the deterministic random source every constructor in the
	// library takes; identical seeds give identical runs.
	RNG = rng.RNG

	// Seconds, MFlops and Rate are the unit types all quantities use.
	Seconds = units.Seconds
	MFlops  = units.MFlops
	Rate    = units.Rate

	// Result reports a finished simulation run.
	Result = sim.Result
	// Timeline collects per-processor activity segments for post-run
	// analysis (utilisation, Gantt rendering).
	Timeline = sim.Timeline

	// SizeDistribution draws task sizes; Uniform, Normal, Poisson and
	// Constant implement it.
	SizeDistribution = workload.SizeDistribution
	Uniform          = workload.Uniform
	Normal           = workload.Normal
	Poisson          = workload.Poisson
	Constant         = workload.Constant

	// WorkerConfig configures one live worker processor for RunWorker:
	// its name, claimed rate, time scale, and optional Execute hook
	// that replaces the simulated sleep with real work.
	WorkerConfig = dist.WorkerConfig
	// WorkerStatus is a live server's point-in-time summary of one
	// connected worker.
	WorkerStatus = dist.WorkerStatus
	// Watcher is a live subscription to a server's event stream,
	// created with Watch.
	Watcher = dist.Watcher
	// ServerSnapshot is a live server's operational snapshot, returned
	// by Server.Snapshot in-process and FetchStats over the wire.
	ServerSnapshot = dist.Snapshot
	// WorkerSnapshot is one connected worker's slice of a
	// ServerSnapshot.
	WorkerSnapshot = dist.WorkerSnapshot
	// WatcherSnapshot is one event-stream subscriber's slice of a
	// ServerSnapshot: current queue depth and cumulative drops.
	WatcherSnapshot = dist.WatcherSnapshot
	// LatencySummary holds dispatch-latency quantiles over a server's
	// recent round trips.
	LatencySummary = dist.LatencySummary
	// DecisionTrace is the full record of one batch-scheduling
	// decision — the generation-best makespan curve, the §3.4 budget
	// ledger, and wall time — returned by Server.Traces in-process and
	// FetchTraces over the wire (protocol 1.2).
	DecisionTrace = dist.Trace
	// TracePoint is one improvement on a DecisionTrace's
	// generation-best makespan curve.
	TracePoint = dist.TracePoint

	// Observer receives the typed events of a scheduling run; see the
	// internal/observe package documentation for the event contract.
	Observer = observe.Observer
	// ObserverFuncs adapts plain functions to Observer; nil fields
	// ignore their event.
	ObserverFuncs = observe.Funcs
	// The observer event payloads.
	BatchDecision     = observe.BatchDecision
	GenerationBest    = observe.GenerationBest
	MigrationEvent    = observe.Migration
	DispatchEvent     = observe.Dispatch
	BudgetStopEvent   = observe.BudgetStop
	EvolveDoneEvent   = observe.EvolveDone
	WorkerJoinedEvent = observe.WorkerJoined
	WorkerLeftEvent   = observe.WorkerLeft
)

// ErrServerClosed is returned by Server.Wait when the server is closed
// before all submitted tasks complete.
var ErrServerClosed = dist.ErrServerClosed

// DefaultBatchSize is the paper's batch size (200), used wherever a
// batch scheduler does not size its own batches.
const DefaultBatchSize = sched.DefaultBatchSize

// NewRNG returns a deterministic random source. Use Stream to derive
// independent sub-streams for separate concerns.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// LinpackRate measures this machine's execution rate in Mflop/s by
// solving an n×n Linpack system — how pnworker self-rates before
// registering with a server.
func LinpackRate(n int, seed uint64) (Rate, error) { return linpack.Rate(n, seed) }

// ReadTasks loads a task set from pnworkload's JSON format.
func ReadTasks(r io.Reader) ([]Task, error) { return workload.ReadJSON(r) }

// MultiObserver combines observers into one that delivers every event
// to each in order; nil entries are dropped.
func MultiObserver(obs ...Observer) Observer { return observe.Multi(obs...) }

// NewHeterogeneousCluster draws n processors with rates uniform in
// [lo, hi] — the paper's §4.2 cluster shape.
func NewHeterogeneousCluster(n int, lo, hi Rate, r *RNG) *Cluster {
	return cluster.NewHeterogeneous(n, lo, hi, r)
}

// NewCluster builds a cluster from explicit processor rates.
func NewCluster(rates []Rate) *Cluster { return cluster.New(rates) }

// NewNetwork builds the per-link communication model for m processors.
func NewNetwork(m int, cfg NetworkConfig, r *RNG) *Network {
	return network.New(m, cfg, r)
}

// GenerateTasks draws n task sizes from the distribution, all arriving
// at t=0.
func GenerateTasks(n int, sizes SizeDistribution, r *RNG) []Task {
	return workload.Generate(workload.Spec{N: n, Sizes: sizes}, r)
}
