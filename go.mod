module pnsched

go 1.24
