package pnsched

import (
	"pnsched/internal/core"
	"pnsched/internal/sched"
)

// islandName is the canonical registry name of the island-model PN
// scheduler ("pn-island" in scenario files resolves to it
// case-insensitively).
const islandName = "PN-ISLAND"

// PaperOrder is the presentation order of the paper's §4 bar charts:
// the seven comparison schedulers of §4.1.
var PaperOrder = []string{"EF", "LL", "RR", "ZO", "PN", "MM", "MX"}

// The built-in schedulers self-register in the paper's presentation
// order, then PN-ISLAND, then the Maheswaran et al. heuristics of the
// extended comparison — so Names() reads like the paper's tables. Each
// carries its metadata (mode, GA/heuristic, summary); the README's
// scheduler table and the CLI -schedulers listings render from it.
func init() {
	RegisterInfo(Info{Name: "EF", Summary: "earliest-finishing processor, one task at a time (§4.1)"},
		func(Spec, *RNG) (Scheduler, error) { return sched.EF{}, nil })
	RegisterInfo(Info{Name: "LL", Summary: "lightest-loaded processor, one task at a time (§4.1)"},
		func(Spec, *RNG) (Scheduler, error) { return sched.LL{}, nil })
	RegisterInfo(Info{Name: "RR", Summary: "round robin over processors, load-blind (§4.1)"},
		func(Spec, *RNG) (Scheduler, error) { return &sched.RR{}, nil })
	RegisterInfo(Info{Name: "ZO", Batch: true, GA: true, Summary: "zero-one GA: processor-number chromosome, generational (§4.1)"},
		func(s Spec, r *RNG) (Scheduler, error) { return core.NewZO(s.gaConfig(), r), nil })
	RegisterInfo(Info{Name: "PN", Batch: true, GA: true, Summary: "the paper's GA: permutation chromosome, §3.4 budget, §3.7 batching"},
		func(s Spec, r *RNG) (Scheduler, error) { return core.NewPN(s.gaConfig(), r), nil })
	RegisterInfo(Info{Name: "MM", Batch: true, Summary: "Min-min: repeatedly place the task with the smallest earliest finish (§4.1)"},
		func(Spec, *RNG) (Scheduler, error) { return sched.MM{}, nil })
	RegisterInfo(Info{Name: "MX", Batch: true, Summary: "Max-min: like Min-min but largest task first (§4.1)"},
		func(Spec, *RNG) (Scheduler, error) { return sched.MX{}, nil })
	RegisterInfo(Info{Name: islandName, Batch: true, GA: true, Summary: "PN on a migrating island-model ring, one GA per core"},
		func(s Spec, r *RNG) (Scheduler, error) {
			return core.NewPNIsland(s.gaConfig(), s.islandConfig(), r), nil
		})
	RegisterInfo(Info{Name: "MET", Summary: "minimum execution time: fastest processor for the task, load-blind"},
		func(Spec, *RNG) (Scheduler, error) { return sched.MET{}, nil })
	RegisterInfo(Info{Name: "OLB", Summary: "opportunistic load balancing: first idle processor"},
		func(Spec, *RNG) (Scheduler, error) { return sched.OLB{}, nil })
	RegisterInfo(Info{Name: "KPB", Summary: "k-percent best: earliest finish among the k% fastest processors"},
		func(s Spec, _ *RNG) (Scheduler, error) { return sched.KPB{K: s.K}, nil })
	RegisterInfo(Info{Name: "SUF", Batch: true, Summary: "Sufferage: place the task that would suffer most from losing its best processor"},
		func(Spec, *RNG) (Scheduler, error) { return sched.Sufferage{}, nil })
}
