package pnsched

import (
	"pnsched/internal/core"
	"pnsched/internal/sched"
)

// islandName is the canonical registry name of the island-model PN
// scheduler ("pn-island" in scenario files resolves to it
// case-insensitively).
const islandName = "PN-ISLAND"

// PaperOrder is the presentation order of the paper's §4 bar charts:
// the seven comparison schedulers of §4.1.
var PaperOrder = []string{"EF", "LL", "RR", "ZO", "PN", "MM", "MX"}

// The built-in schedulers self-register in the paper's presentation
// order, then PN-ISLAND, then the Maheswaran et al. heuristics of the
// extended comparison — so Names() reads like the paper's tables.
func init() {
	Register("EF", func(Spec, *RNG) (Scheduler, error) { return sched.EF{}, nil })
	Register("LL", func(Spec, *RNG) (Scheduler, error) { return sched.LL{}, nil })
	Register("RR", func(Spec, *RNG) (Scheduler, error) { return &sched.RR{}, nil })
	Register("ZO", func(s Spec, r *RNG) (Scheduler, error) {
		return core.NewZO(s.gaConfig(), r), nil
	})
	Register("PN", func(s Spec, r *RNG) (Scheduler, error) {
		return core.NewPN(s.gaConfig(), r), nil
	})
	Register("MM", func(Spec, *RNG) (Scheduler, error) { return sched.MM{}, nil })
	Register("MX", func(Spec, *RNG) (Scheduler, error) { return sched.MX{}, nil })
	Register(islandName, func(s Spec, r *RNG) (Scheduler, error) {
		return core.NewPNIsland(s.gaConfig(), s.islandConfig(), r), nil
	})
	Register("MET", func(Spec, *RNG) (Scheduler, error) { return sched.MET{}, nil })
	Register("OLB", func(Spec, *RNG) (Scheduler, error) { return sched.OLB{}, nil })
	Register("KPB", func(s Spec, _ *RNG) (Scheduler, error) { return sched.KPB{K: s.K}, nil })
	Register("SUF", func(Spec, *RNG) (Scheduler, error) { return sched.Sufferage{}, nil })
}
