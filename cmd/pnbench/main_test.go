package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pnsched/internal/experiments"
)

func TestResolveFiguresAll(t *testing.T) {
	names, err := resolveFigures("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(experiments.Figures) {
		t.Errorf("all resolved to %d names, want %d", len(names), len(experiments.Figures))
	}
}

func TestResolveFiguresEverythingIncludesIsland(t *testing.T) {
	names, err := resolveFigures("everything")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		if n == "island" {
			found = true
		}
	}
	if !found {
		t.Errorf("everything did not include the island experiment: %v", names)
	}
}

func TestResolveFiguresRejectsUnknownUpFront(t *testing.T) {
	for _, bad := range []string{"12", "2", "3x", "islnd", "fig5", ""} {
		_, err := resolveFigures(bad)
		if err == nil {
			t.Errorf("%q accepted", bad)
			continue
		}
		// The error must teach the valid values.
		for _, want := range []string{"3", "11", "island", "everything"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%q error %q does not list %q", bad, err, want)
			}
		}
	}
}

func TestProfileByNameRejectsUnknown(t *testing.T) {
	for _, name := range []string{"fast", "default", "paper"} {
		if _, err := profileByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := profileByName("slow"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	report := jsonReport{
		GeneratedAt: "2026-01-01T00:00:00Z",
		Profile:     "fast",
		Seed:        2005,
		Results: []jsonFigure{{
			Name:      "island",
			Title:     "Island model",
			Header:    []string{"islands", "makespan[s]", "wall[ms]", "speedup", "evals"},
			Rows:      [][]string{{"1 (seq)", "13.0", "90", "1", "16000"}},
			ElapsedMS: 123,
		}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSON(path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if back.Results[0].Name != "island" || back.Results[0].Rows[0][0] != "1 (seq)" {
		t.Errorf("round-trip mangled the report: %+v", back)
	}
}
