// Command pnbench regenerates the paper's figures.
//
// Usage:
//
//	pnbench -figure 5                 # one figure, default profile
//	pnbench -figure all -profile paper
//	pnbench -figure 3 -csv out/      # also write CSV files
//
// Profiles: fast (seconds), default (a minute or two), paper (the
// published scale: 10,000 tasks, 50 processors, 20 repeats, 1000
// generations).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"pnsched/internal/experiments"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "paper figure (3-11), supplementary experiment (extended, scalability, dynamic), 'all' figures, or 'everything'")
		profile = flag.String("profile", "default", "experiment scale: fast, default, or paper")
		seed    = flag.Uint64("seed", 0, "override the profile's base seed")
		workers = flag.Int("workers", 0, "parallel workers (0: all CPUs)")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files into")
	)
	flag.Parse()

	p, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *workers != 0 {
		p.Workers = *workers
	}

	var names []string
	switch *figure {
	case "all":
		for _, fig := range experiments.Figures {
			names = append(names, strconv.Itoa(fig))
		}
	case "everything":
		for _, fig := range experiments.Figures {
			names = append(names, strconv.Itoa(fig))
		}
		names = append(names, experiments.Supplementary...)
	default:
		names = []string{*figure}
	}

	for _, name := range names {
		start := time.Now()
		var csv *os.File
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			label := name
			if _, err := strconv.Atoi(name); err == nil {
				label = "fig" + name
			}
			path := filepath.Join(*csvDir, label+".csv")
			csv, err = os.Create(path)
			if err != nil {
				fatal(err)
			}
		}
		if csv != nil {
			err = experiments.RenderNamed(name, p, os.Stdout, csv)
			csv.Close()
		} else {
			err = experiments.RenderNamed(name, p, os.Stdout, nil)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func profileByName(name string) (experiments.Profile, error) {
	switch name {
	case "fast":
		return experiments.Fast(), nil
	case "default":
		return experiments.Default(), nil
	case "paper":
		return experiments.Paper(), nil
	default:
		return experiments.Profile{}, fmt.Errorf("unknown profile %q (want fast, default, or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnbench:", err)
	os.Exit(1)
}
