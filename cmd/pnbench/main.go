// Command pnbench regenerates the paper's figures and the repo's
// supplementary experiments.
//
// Usage:
//
//	pnbench -figure 5                 # one figure, default profile
//	pnbench -figure all -profile paper
//	pnbench -figure 3 -csv out/       # also write CSV files
//	pnbench -figure island -json bench.json
//
// Profiles: fast (seconds), default (a minute or two), paper (the
// published scale: 10,000 tasks, 50 processors, 20 repeats, 1000
// generations).
//
// -json writes every rendered table as machine-readable records (name,
// profile, seed, column headers, data rows, wall-clock) so result
// files can accumulate across runs — including the island experiment's
// island-vs-sequential numbers and the evolve experiment's
// naive-vs-incremental evaluation comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pnsched/internal/experiments"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "paper figure (3-11), supplementary experiment (extended, scalability, dynamic, island, evolve), 'all' figures, or 'everything'")
		profile = flag.String("profile", "default", "experiment scale: fast, default, or paper")
		seed    = flag.Uint64("seed", 0, "override the profile's base seed")
		workers = flag.Int("workers", 0, "parallel workers (0: all CPUs)")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files into")
		jsonOut = flag.String("json", "", "file to write machine-readable results into")
	)
	flag.Parse()

	// Validate everything before any work: a typo must not cost a
	// partially completed multi-minute run.
	p, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	names, err := resolveFigures(*figure)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *workers != 0 {
		p.Workers = *workers
	}

	report := jsonReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Profile:     p.Name,
		Seed:        p.Seed,
	}
	for _, name := range names {
		start := time.Now()
		fig, err := experiments.RunNamed(name, p)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)

		var csv *os.File
		if *csvDir != "" {
			if mkErr := os.MkdirAll(*csvDir, 0o755); mkErr != nil {
				fatal(mkErr)
			}
			path := filepath.Join(*csvDir, figureLabel(name)+".csv")
			if csv, err = os.Create(path); err != nil {
				fatal(err)
			}
		}
		if csv != nil {
			experiments.RenderFigure(fig, os.Stdout, csv)
			csv.Close()
		} else {
			experiments.RenderFigure(fig, os.Stdout, nil)
		}
		fmt.Printf("\n[%s done in %v]\n\n", name, elapsed.Round(time.Millisecond))

		tbl := fig.Table()
		report.Results = append(report.Results, jsonFigure{
			Name:      name,
			Title:     tbl.Title,
			Header:    tbl.Header,
			Rows:      tbl.Rows,
			ElapsedMS: elapsed.Milliseconds(),
		})
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, report); err != nil {
			fatal(err)
		}
	}
}

// jsonReport is the schema of a -json results file: one run of pnbench
// with one record per rendered experiment.
type jsonReport struct {
	GeneratedAt string       `json:"generated_at"`
	Profile     string       `json:"profile"`
	Seed        uint64       `json:"seed"`
	Results     []jsonFigure `json:"results"`
}

// jsonFigure is one experiment's table plus its wall-clock cost.
type jsonFigure struct {
	Name      string     `json:"name"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

func writeJSON(path string, report jsonReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveFigures expands the -figure value into experiment names and
// rejects unknown ones up front, listing what is valid.
func resolveFigures(figure string) ([]string, error) {
	var names []string
	switch figure {
	case "all":
		for _, fig := range experiments.Figures {
			names = append(names, strconv.Itoa(fig))
		}
	case "everything":
		for _, fig := range experiments.Figures {
			names = append(names, strconv.Itoa(fig))
		}
		names = append(names, experiments.Supplementary...)
	default:
		names = []string{figure}
	}
	for _, name := range names {
		if !experiments.Known(name) {
			return nil, fmt.Errorf("unknown figure %q (valid: %s, all, everything)", name, validFigureList())
		}
	}
	return names, nil
}

// validFigureList renders every accepted -figure value for error
// messages.
func validFigureList() string {
	var parts []string
	for _, fig := range experiments.Figures {
		parts = append(parts, strconv.Itoa(fig))
	}
	parts = append(parts, experiments.Supplementary...)
	return strings.Join(parts, ", ")
}

// figureLabel names the CSV file for an experiment: numeric figures
// get a "fig" prefix.
func figureLabel(name string) string {
	if _, err := strconv.Atoi(name); err == nil {
		return "fig" + name
	}
	return name
}

func profileByName(name string) (experiments.Profile, error) {
	switch name {
	case "fast":
		return experiments.Fast(), nil
	case "default":
		return experiments.Default(), nil
	case "paper":
		return experiments.Paper(), nil
	default:
		return experiments.Profile{}, fmt.Errorf("unknown profile %q (want fast, default, or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnbench:", err)
	os.Exit(1)
}
