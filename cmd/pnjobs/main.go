// Command pnjobs is the client for the multi-tenant job dispatcher
// (pnserver -jobs, protocol 1.3). It submits jobs — a workload plus a
// per-job scheduler spec, tenant and priority — and queries, waits on,
// and cancels them over the wire.
//
// Usage:
//
//	pnjobs [-addr host:port] <command> [flags]
//
//	pnjobs submit -tenant gold -priority 2 -tasks 200 -wait
//	pnjobs submit -sched '{"name":"PN","generations":500}' -workload w.json
//	pnjobs status job-0001
//	pnjobs queue
//	pnjobs cancel job-0001
//	pnjobs result job-0001
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pnsched"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "dispatcher address")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = submitCmd(ctx, *addr, rest)
	case "status":
		err = statusCmd(ctx, *addr, rest)
	case "queue":
		err = queueCmd(ctx, *addr, rest)
	case "cancel":
		err = cancelCmd(ctx, *addr, rest)
	case "result":
		err = resultCmd(ctx, *addr, rest)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnjobs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pnjobs [-addr host:port] <command> [flags]

commands:
  submit   submit a job (generated or -workload tasks, optional -sched spec)
  status   print one job's state (pnjobs status <job-id>)
  queue    list every job the dispatcher retains
  cancel   cancel a queued or running job (pnjobs cancel <job-id>)
  result   print a terminal job's outcome (pnjobs result <job-id>)

run 'pnjobs <command> -h' for the command's flags.
`)
}

// submitCmd builds one job from its flags and submits it, optionally
// blocking until it reaches a terminal state.
func submitCmd(ctx context.Context, addr string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	tenant := fs.String("tenant", "", "submitting tenant (empty: the dispatcher default)")
	priority := fs.Int("priority", 0, "admission priority under the priority policy (higher first)")
	schedJSON := fs.String("sched", "", `scheduler spec JSON, e.g. '{"name":"PN","generations":500}' (empty: the PN defaults)`)
	nTasks := fs.Int("tasks", 200, "tasks to generate (ignored with -workload)")
	lo := fs.Float64("lo", 10, "generated task size lower bound, MFLOPs")
	hi := fs.Float64("hi", 1000, "generated task size upper bound, MFLOPs")
	seed := fs.Uint64("seed", 1, "generator seed")
	wlFile := fs.String("workload", "", "load tasks from a pnworkload JSON file instead of generating")
	retry := fs.Int("retry-budget", -1, "per-job task-reissue budget (-1: the dispatcher default)")
	wait := fs.Bool("wait", false, "block until the job reaches a terminal state")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("submit takes no arguments, got %q", fs.Args())
	}

	req := pnsched.JobRequest{Tenant: *tenant, Priority: *priority}
	if *schedJSON != "" {
		if err := json.Unmarshal([]byte(*schedJSON), &req.Scheduler); err != nil {
			return fmt.Errorf("-sched: %w", err)
		}
	}
	if *retry >= 0 {
		req.RetryBudget = retry
	}
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			return err
		}
		req.Tasks, err = pnsched.ReadTasks(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		req.Tasks = pnsched.GenerateTasks(*nTasks,
			pnsched.Uniform{Lo: pnsched.MFlops(*lo), Hi: pnsched.MFlops(*hi)}, pnsched.NewRNG(*seed))
	}

	info, err := pnsched.SubmitJob(ctx, addr, req)
	if err != nil {
		return err
	}
	printInfo(info)
	if !*wait {
		return nil
	}
	for info.State == pnsched.JobQueued || info.State == pnsched.JobRunning {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
		if info, err = pnsched.JobStatus(ctx, addr, info.ID); err != nil {
			return err
		}
	}
	printInfo(info)
	if info.State == pnsched.JobDone {
		res, err := pnsched.FetchResult(ctx, addr, info.ID)
		if err != nil {
			return err
		}
		printResult(res)
	}
	if info.State != pnsched.JobDone {
		return fmt.Errorf("job %s ended %s", info.ID, info.State)
	}
	return nil
}

func statusCmd(ctx context.Context, addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pnjobs status <job-id>")
	}
	info, err := pnsched.JobStatus(ctx, addr, args[0])
	if err != nil {
		return err
	}
	printInfo(info)
	return nil
}

func queueCmd(ctx context.Context, addr string, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: pnjobs queue")
	}
	jobs, err := pnsched.JobQueue(ctx, addr)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-10s %-12s %-10s %-10s %5s %10s %9s %8s\n",
		"ID", "TENANT", "STATE", "SCHEDULER", "PRIO", "DONE/TASKS", "RETRIES", "WORKERS")
	for _, j := range jobs {
		pos := ""
		if j.Position > 0 {
			pos = fmt.Sprintf("  #%d in queue", j.Position)
		}
		fmt.Printf("%-10s %-12s %-10s %-10s %5d %5d/%-4d %9d %8d%s\n",
			j.ID, j.Tenant, j.State, j.Scheduler, j.Priority,
			j.Completed, j.Tasks, j.Retries, j.Workers, pos)
	}
	return nil
}

func cancelCmd(ctx context.Context, addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pnjobs cancel <job-id>")
	}
	info, err := pnsched.CancelJob(ctx, addr, args[0])
	if err != nil {
		return err
	}
	printInfo(info)
	return nil
}

func resultCmd(ctx context.Context, addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pnjobs result <job-id>")
	}
	res, err := pnsched.FetchResult(ctx, addr, args[0])
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func printInfo(info pnsched.JobInfo) {
	fmt.Printf("%s  tenant=%s state=%s scheduler=%s %d/%d tasks",
		info.ID, info.Tenant, info.State, info.Scheduler, info.Completed, info.Tasks)
	if info.Position > 0 {
		fmt.Printf(" position=%d", info.Position)
	}
	if info.Workers > 0 {
		fmt.Printf(" workers=%d", info.Workers)
	}
	if info.Retries > 0 {
		fmt.Printf(" retries=%d/%d", info.Retries, info.RetryBudget)
	}
	if info.Error != "" {
		fmt.Printf(" error=%q", info.Error)
	}
	fmt.Println()
}

func printResult(res pnsched.JobResult) {
	fmt.Printf("%s  tenant=%s state=%s: %d/%d tasks, %d retries, %.2fs elapsed (simulated), %.2fs wall\n",
		res.ID, res.Tenant, res.State, res.Completed, res.Tasks, res.Retries, res.Elapsed, res.Duration)
	if res.Error != "" {
		fmt.Printf("  error: %s\n", res.Error)
	}
	for _, w := range res.Workers {
		fmt.Printf("  %-20s %6d tasks  %12.1f MFLOPs\n", w.Name, w.Tasks, w.Work)
	}
}
