// Command pnsim runs a single scheduling simulation and prints its
// metrics — a quick way to compare schedulers on one scenario.
//
// Usage:
//
//	pnsim -sched PN -tasks 1000 -procs 50 -dist normal -comm 10
//	pnsim -sched RR -dist poisson -mean 100
//	pnsim -sched all -tasks 500        # run every scheduler
//	pnsim -schedulers                  # list schedulers with metadata
//	pnsim -workload tasks.json -sched EF
//	pnsim -scenario scenario.json -gantt
//
// A -scenario file fully describes cluster, network, workload and
// scheduler (see internal/scenario); other scenario flags are then
// ignored.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pnsched"
	"pnsched/internal/cluster"
	"pnsched/internal/metrics"
	"pnsched/internal/network"
	"pnsched/internal/rng"
	"pnsched/internal/scenario"
	"pnsched/internal/sim"
	"pnsched/internal/task"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "PN", "scheduler (case-insensitive registry name, e.g. PN, pn-island, ef) or 'all' for the paper's seven")
		nTasks    = flag.Int("tasks", 1000, "number of tasks")
		procs     = flag.Int("procs", 50, "number of processors")
		rateLo    = flag.Float64("rate-lo", 10, "minimum processor rate (Mflop/s)")
		rateHi    = flag.Float64("rate-hi", 100, "maximum processor rate (Mflop/s)")
		dist      = flag.String("dist", "normal", "task-size distribution: normal, uniform, poisson, constant")
		mean      = flag.Float64("mean", 1000, "mean size (normal/poisson/constant), MFLOPs")
		variance  = flag.Float64("variance", 9e5, "size variance (normal)")
		lo        = flag.Float64("lo", 10, "lower size bound (uniform)")
		hi        = flag.Float64("hi", 1000, "upper size bound (uniform)")
		comm      = flag.Float64("comm", 10, "mean communication cost per task (seconds)")
		spread    = flag.Float64("comm-spread", 0.3, "per-link spread of mean comm cost (fraction)")
		jitter    = flag.Float64("comm-jitter", 0.2, "per-transfer jitter (fraction)")
		gens      = flag.Int("generations", 1000, "GA generations (PN/ZO)")
		batch     = flag.Int("batch", 200, "batch size for batch schedulers")
		dynamic   = flag.Bool("dynamic-batch", false, "let PN size batches dynamically (§3.7)")
		seed      = flag.Uint64("seed", 1, "random seed")
		wlFile    = flag.String("workload", "", "load tasks from a pnworkload JSON file instead of generating")
		gantt     = flag.Bool("gantt", false, "print a per-processor activity timeline after each run")
		scenFile  = flag.String("scenario", "", "run a scenario JSON file (overrides the other scenario flags)")
		listSch   = flag.Bool("schedulers", false, "list the registered schedulers (mode, GA/heuristic, summary) and exit")
	)
	flag.Parse()

	if *listSch {
		fmt.Printf("%-10s %-10s %-10s %s\n", "NAME", "MODE", "KIND", "SUMMARY")
		for _, info := range pnsched.Infos() {
			mode, kind := "immediate", "heuristic"
			if info.Batch {
				mode = "batch"
			}
			if info.GA {
				kind = "GA"
			}
			fmt.Printf("%-10s %-10s %-10s %s\n", info.Name, mode, kind, info.Summary)
		}
		return
	}
	if *scenFile != "" {
		runScenario(*scenFile, *gantt)
		return
	}

	base := rng.New(*seed)
	var tasks []task.Task
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		tasks, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		d, err := distByName(*dist, *mean, *variance, *lo, *hi)
		if err != nil {
			fatal(err)
		}
		tasks = workload.Generate(workload.Spec{N: *nTasks, Sizes: d}, base.Stream(1))
	}

	names := []string{*schedName}
	if *schedName == "all" {
		// Copy: the canonicalization below writes into names, and the
		// exported PaperOrder slice must not be mutated.
		names = append([]string(nil), pnsched.PaperOrder...)
	}
	for i, name := range names {
		// Result tables show the canonical registry name whatever the
		// casing on the command line; unknown names error in the loop
		// below with the full registry listing.
		if c, ok := pnsched.Canonical(name); ok {
			names[i] = c
		}
	}

	tbl := metrics.Table{
		Title:  fmt.Sprintf("%d tasks on %d processors, mean comm %.2gs, seed %d", len(tasks), *procs, *comm, *seed),
		Header: []string{"scheduler", "makespan", "efficiency", "sched-busy", "invocations"},
	}
	for _, name := range names {
		clu := cluster.NewHeterogeneous(*procs, units.Rate(*rateLo), units.Rate(*rateHi), rng.New(*seed).Stream(2))
		net := network.New(*procs, network.Config{
			MeanCost:   units.Seconds(*comm),
			LinkSpread: *spread,
			Jitter:     *jitter,
		}, rng.New(*seed).Stream(3))
		spec := pnsched.Spec{
			Name:         name,
			Generations:  *gens,
			Batch:        *batch,
			DynamicBatch: *dynamic,
		}
		s, err := pnsched.New(spec.With(pnsched.WithRNG(rng.New(*seed).Stream(4))))
		if err != nil {
			fatal(err)
		}
		cfg := sim.Config{Cluster: clu, Net: net, Tasks: tasks, Scheduler: s, BatchSizer: pnsched.SizerFor(s, spec)}
		var tl *sim.Timeline
		if *gantt {
			tl = sim.NewTimeline(*procs)
			cfg.Timeline = tl
		}
		res := sim.Run(cfg)
		if res.Completed != len(tasks) {
			fmt.Fprintf(os.Stderr, "pnsim: %s completed only %d of %d tasks\n", name, res.Completed, len(tasks))
		}
		tbl.AddRow(name, res.Makespan, res.Efficiency, res.SchedulerBusy, res.Invocations)
		if tl != nil {
			fmt.Printf("\n%s timeline:\n", name)
			tl.Gantt(os.Stdout, 96)
			fmt.Println()
		}
	}
	tbl.Render(os.Stdout)
}

// runScenario executes a scenario file once and prints its metrics.
func runScenario(path string, gantt bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	spec, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cfg, err := spec.Build(func(name string) (io.ReadCloser, error) {
		return os.Open(name)
	})
	if err != nil {
		fatal(err)
	}
	var tl *sim.Timeline
	if gantt {
		tl = sim.NewTimeline(cfg.Cluster.M())
		cfg.Timeline = tl
	}
	res := sim.Run(cfg)
	tbl := metrics.Table{
		Title:  fmt.Sprintf("scenario %s: %s on %d processors", path, cfg.Scheduler.Name(), cfg.Cluster.M()),
		Header: []string{"makespan", "efficiency", "completed", "reissued", "sched-busy"},
	}
	tbl.AddRow(res.Makespan, res.Efficiency, res.Completed, res.Reissued, res.SchedulerBusy)
	tbl.Render(os.Stdout)
	if tl != nil {
		fmt.Println()
		tl.Gantt(os.Stdout, 96)
	}
}

func distByName(name string, mean, variance, lo, hi float64) (workload.SizeDistribution, error) {
	switch name {
	case "normal":
		return workload.Normal{Mean: units.MFlops(mean), Variance: variance}, nil
	case "uniform":
		return workload.Uniform{Lo: units.MFlops(lo), Hi: units.MFlops(hi)}, nil
	case "poisson":
		return workload.Poisson{Mean: units.MFlops(mean)}, nil
	case "constant":
		return workload.Constant{Size: units.MFlops(mean)}, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnsim:", err)
	os.Exit(1)
}
