// Command pnserver runs the dedicated scheduling processor of the
// paper's §3 as a real TCP service: it loads (or generates) a workload,
// waits for pnworker clients to connect, schedules batches with the PN
// genetic algorithm, and reports progress until every task completes.
// With -watch it is instead a remote observer: it subscribes to a
// running pnserver's event stream (docs/wire-protocol.md) and prints
// every scheduling event as it happens, plus a periodic stats line.
// With -stats it requests one operational snapshot — queue depths,
// per-worker counts, dispatch-latency quantiles — and exits. With
// -trace it fetches the server's retained per-batch decision traces
// and prints each batch's generation-best makespan curve and §3.4
// budget ledger. With -admin the serving process additionally exposes
// an HTTP admin endpoint (/metrics in Prometheus text format,
// /healthz, /debug/pprof/).
//
// With -jobs it instead runs the multi-tenant job dispatcher
// (protocol 1.3): a persistent service with no workload of its own
// that accepts jobs over the wire — each carrying its own scheduler
// spec, tenant and priority — admits them under -policy, and leases
// the connected workers to the active job. Jobs are submitted and
// managed with the pnjobs command. With -journal the dispatcher's job
// state is durable: transitions are journaled under the given
// directory before they are acknowledged, and a restart pointed at
// the same directory replays them (docs/job-journal.md).
//
// Usage:
//
//	pnserver -listen :9000 -admin :9090 -tasks 500 &
//	pnworker -connect localhost:9000 -rate 100 &
//	pnworker -connect localhost:9000 -rate 400 &
//	pnserver -watch localhost:9000
//	pnserver -stats localhost:9000
//	pnserver -trace localhost:9000
//	curl localhost:9090/metrics
//	pnserver -schedulers
//
//	pnserver -jobs -listen :9000 -policy fair -weights 'gold=3,free=1' -journal /var/lib/pnsched &
//	pnworker -connect localhost:9000 -rate 100 &
//	pnjobs -addr localhost:9000 submit -tenant gold -tasks 200 -wait
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"pnsched"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9000", "address to listen on")
		admin    = flag.String("admin", "", "serve the HTTP admin endpoint (/metrics, /healthz, /debug/pprof/) on this address")
		watch    = flag.String("watch", "", "watch a running server's event stream at this address instead of serving")
		stats    = flag.String("stats", "", "print a running server's stats snapshot from this address and exit")
		trace    = flag.String("trace", "", "print a running server's per-batch decision traces from this address and exit")
		listSch  = flag.Bool("schedulers", false, "list the registered schedulers and exit")
		nTasks   = flag.Int("tasks", 500, "tasks to generate (ignored with -workload)")
		wlFile   = flag.String("workload", "", "load tasks from a pnworkload JSON file")
		batch    = flag.Int("batch", pnsched.DefaultBatchSize, "initial/fixed batch size")
		dynamic  = flag.Bool("dynamic-batch", true, "size batches dynamically (§3.7)")
		gens     = flag.Int("generations", 1000, "GA generations per batch")
		islands  = flag.Int("islands", 0, "schedule with the island-model GA across this many islands (0: sequential PN, -1: one island per CPU)")
		interval = flag.Int("migration-interval", 0, "generations between island migrations (0: default)")
		migrants = flag.Int("migrants", 0, "elites exchanged per island migration (0: default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")

		jobsMode  = flag.Bool("jobs", false, "run the multi-tenant job dispatcher instead of serving one workload")
		policy    = flag.String("policy", "fifo", "job admission policy: fifo, priority, or fair (with -jobs)")
		weights   = flag.String("weights", "", "fair-share tenant weights as tenant=weight,... (with -jobs -policy fair)")
		maxActive = flag.Int("max-active", 0, "concurrently running jobs; 0 keeps the default of 1 (with -jobs)")
		retry     = flag.Int("retry-budget", 0, "default per-job task-reissue budget; 0 keeps the package default (with -jobs)")
		journal   = flag.String("journal", "", "journal job state under this directory and replay it on restart (with -jobs)")
	)
	flag.Parse()

	if *listSch {
		printSchedulers(os.Stdout)
		return
	}
	if *stats != "" {
		statsMain(*stats)
		return
	}
	if *trace != "" {
		traceMain(*trace)
		return
	}
	if *watch != "" {
		watchMain(*watch)
		return
	}
	if *jobsMode {
		jobsMain(*listen, *admin, *policy, *weights, *journal, *maxActive, *retry, *quiet)
		return
	}

	var tasks []pnsched.Task
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		tasks, err = pnsched.ReadTasks(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tasks = pnsched.GenerateTasks(*nTasks,
			pnsched.Uniform{Lo: 10, Hi: 1000}, pnsched.NewRNG(*seed))
	}
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty workload: nothing to schedule"))
	}

	// Structured, levelled logging: -quiet keeps warnings and errors
	// but drops the per-batch / per-worker progress records.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	// The two lifecycle records — listening and run complete — survive
	// -quiet: they are the run's summary, not progress.
	life := logger
	if *quiet {
		life = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	// Lower the flags onto the same public Spec scenario files and
	// library callers use; -islands != 0 selects the island-model
	// variant from the registry.
	opts := []pnsched.Option{
		pnsched.WithGenerations(*gens),
		pnsched.WithBatch(*batch),
		pnsched.WithDynamicBatch(*dynamic),
		pnsched.WithRNG(pnsched.NewRNG(*seed).Stream(1)),
	}
	name := "PN"
	if *islands != 0 {
		name = "PN-ISLAND"
		if *islands > 0 {
			opts = append(opts, pnsched.WithIslands(*islands))
		}
		if *interval > 0 {
			opts = append(opts, pnsched.WithMigrationInterval(*interval))
		}
		if *migrants > 0 {
			opts = append(opts, pnsched.WithMigrants(*migrants))
		}
	}
	spec, err := pnsched.NewSpec(name, opts...)
	if err != nil {
		fatal(err)
	}
	ctx, cancelSignal := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignal()
	serveOpts := []pnsched.ServeOption{
		pnsched.WithListenAddr(*listen),
		pnsched.WithServeLog(logger),
	}
	if *admin != "" {
		serveOpts = append(serveOpts, pnsched.WithAdminAddr(*admin))
	}
	srv, err := pnsched.Serve(ctx, spec, serveOpts...)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	logArgs := []any{"addr", srv.Addr(), "tasks", len(tasks)}
	if a := srv.AdminAddr(); a != nil {
		logArgs = append(logArgs, "admin", a)
	}
	life.Info("pnserver listening", logArgs...)

	srv.Submit(tasks)

	// Progress loop.
	start := time.Now()
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	done := make(chan error, 1)
	go func() { done <- srv.Wait(0) }()
	for {
		select {
		case err := <-done:
			if err != nil && ctx.Err() == nil {
				fatal(err)
			}
			st := srv.Stats()
			life.Info("pnserver run complete",
				"completed", st.Completed, "submitted", st.Submitted,
				"reissued", st.Reissued, "workers", st.Workers,
				"elapsed", time.Since(start).Round(time.Millisecond))
			return
		case <-tick.C:
			st := srv.Stats()
			slog.Info("pnserver progress",
				"completed", st.Completed, "submitted", st.Submitted,
				"reissued", st.Reissued, "workers", st.Workers, "watchers", st.Watchers)
		}
	}
}

// jobsMain runs the multi-tenant job dispatcher until interrupted:
// workers connect exactly as they do to the single-workload server,
// and jobs arrive over the wire from pnjobs clients.
func jobsMain(listen, admin, policy, weights, journal string, maxActive, retry int, quiet bool) {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	life := logger
	if quiet {
		life = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	opts := []pnsched.JobsOption{
		pnsched.WithJobsListenAddr(listen),
		pnsched.WithJobsLog(logger),
		pnsched.WithAdmissionPolicy(pnsched.AdmissionPolicy(policy)),
	}
	if weights != "" {
		for _, pair := range strings.Split(weights, ",") {
			tenant, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fatal(fmt.Errorf("-weights %q: want tenant=weight,...", weights))
			}
			w, err := strconv.ParseFloat(val, 64)
			if err != nil {
				fatal(fmt.Errorf("-weights %q: %v", weights, err))
			}
			opts = append(opts, pnsched.WithTenantWeight(tenant, w))
		}
	}
	if maxActive > 0 {
		opts = append(opts, pnsched.WithMaxActiveJobs(maxActive))
	}
	if retry > 0 {
		opts = append(opts, pnsched.WithJobRetryBudget(retry))
	}
	if admin != "" {
		opts = append(opts, pnsched.WithJobsAdminAddr(admin))
	}
	if journal != "" {
		opts = append(opts, pnsched.WithJobsJournal(journal))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	svc, err := pnsched.ServeJobs(ctx, opts...)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	logArgs := []any{"addr", svc.Addr(), "policy", policy}
	if a := svc.AdminAddr(); a != nil {
		logArgs = append(logArgs, "admin", a)
	}
	life.Info("pnserver job dispatcher listening", logArgs...)

	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			snap := svc.Snapshot()
			if j := snap.Jobs; j != nil {
				life.Info("pnserver dispatcher shutting down",
					"done", j.Done, "failed", j.Failed, "cancelled", j.Cancelled,
					"queued", j.Queued, "running", j.Running)
			}
			return
		case <-tick.C:
			snap := svc.Snapshot()
			if j := snap.Jobs; j != nil {
				slog.Info("dispatcher progress",
					"queued", j.Queued, "running", j.Running,
					"done", j.Done, "failed", j.Failed, "cancelled", j.Cancelled,
					"workers", len(snap.Workers), "tasks_running", snap.Running)
			}
		}
	}
}

// watchMain subscribes to a running server's event stream and prints
// every event until the server closes or the process is interrupted,
// with a stats snapshot line every few seconds.
func watchMain(addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	w, err := pnsched.Watch(ctx, addr, pnsched.ObserverFuncs{
		BatchDecided: func(e pnsched.BatchDecision) {
			slog.Info("batch decided", "invocation", e.Invocation, "scheduler", e.Scheduler,
				"tasks", e.Tasks, "workers", e.Procs, "cost", float64(e.Cost),
				"wall", float64(e.Wall), "at", float64(e.At))
		},
		GenerationBest: func(e pnsched.GenerationBest) {
			slog.Info("generation best", "generation", e.Generation, "makespan", float64(e.Makespan))
		},
		Migration: func(e pnsched.MigrationEvent) {
			slog.Info("island migration", "round", e.Round, "migrants", e.Migrants)
		},
		Dispatch: func(e pnsched.DispatchEvent) {
			slog.Info("dispatch", "task", e.Task, "worker", e.Proc, "at", float64(e.At))
		},
		BudgetStop: func(e pnsched.BudgetStopEvent) {
			slog.Info("budget stop", "generation", e.Generation,
				"budget", float64(e.Budget), "spent", float64(e.Spent))
		},
		EvolveDone: func(e pnsched.EvolveDoneEvent) {
			slog.Info("evolve done", "generations", e.Generations, "evaluations", e.Evaluations,
				"genes", e.Genes, "spent", float64(e.Spent), "best_makespan", float64(e.BestMakespan),
				"reason", e.Reason)
		},
		WorkerJoined: func(e pnsched.WorkerJoinedEvent) {
			slog.Info("worker joined", "worker", e.Name, "rate", float64(e.Rate), "workers", e.Workers)
		},
		WorkerLeft: func(e pnsched.WorkerLeftEvent) {
			slog.Info("worker left", "worker", e.Name, "reissued", e.Reissued, "workers", e.Workers)
		},
		JobQueued: func(e pnsched.JobQueuedEvent) {
			slog.Info("job queued", "job", e.ID, "tenant", e.Tenant,
				"priority", e.Priority, "tasks", e.Tasks, "queued", e.Queued)
		},
		JobStarted: func(e pnsched.JobStartedEvent) {
			slog.Info("job started", "job", e.ID, "tenant", e.Tenant,
				"workers", e.Workers, "waited", float64(e.Waited))
		},
		JobDone: func(e pnsched.JobDoneEvent) {
			slog.Info("job "+e.State, "job", e.ID, "tenant", e.Tenant,
				"completed", e.Completed, "retries", e.Retries, "duration", float64(e.Duration))
		},
	})
	if err != nil {
		fatal(err)
	}
	slog.Info("watching server", "addr", addr)

	// Periodic stats line alongside the event stream. Older servers
	// without the stats message just don't get the line.
	statsTick := time.NewTicker(5 * time.Second)
	defer statsTick.Stop()
	go func() {
		for range statsTick.C {
			snap, err := pnsched.FetchStats(ctx, addr)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			args := []any{
				"completed", snap.Completed, "submitted", snap.Submitted,
				"pending", snap.Pending, "running", snap.Running,
				"workers", len(snap.Workers), "p50_dispatch", time.Duration(float64(snap.Latency.P50) * float64(time.Second)),
				"uptime", time.Duration(float64(snap.Uptime) * float64(time.Second)).Round(time.Second),
			}
			if j := snap.Jobs; j != nil {
				args = append(args, "jobs_queued", j.Queued, "jobs_running", j.Running, "jobs_done", j.Done)
			}
			slog.Info("server stats", args...)
		}
	}()

	if err := w.Wait(); err != nil && ctx.Err() == nil {
		fatal(err)
	}
	slog.Info("watch ended", "frames", w.Frames(), "dropped", w.Dropped())
}

// traceMain fetches the server's retained per-batch decision traces
// and prints, for each batch, the decision summary, the §3.4 budget
// ledger, and the generation-best makespan curve.
func traceMain(addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	traces, err := pnsched.FetchTraces(ctx, addr)
	if err != nil {
		fatal(err)
	}
	if len(traces) == 0 {
		fmt.Println("no decision traces retained yet")
		return
	}
	for _, t := range traces {
		fmt.Printf("batch %d: %s placed %d tasks over %d workers (cost %v, wall %v)\n",
			t.Invocation, t.Scheduler, t.Tasks, t.Procs, t.Cost,
			time.Duration(float64(t.Wall)*float64(time.Second)).Round(time.Microsecond))
		if t.Generations > 0 || t.Evaluations > 0 {
			fmt.Printf("  GA: %d generations, %d evaluations (%d genes, %d rebalance), stopped: %s\n",
				t.Generations, t.Evaluations, t.Genes, t.RebalanceEvals, t.Reason)
			fmt.Printf("  budget: %v granted, %v spent", t.Budget, t.Spent)
			if t.Migrations > 0 {
				fmt.Printf(", %d migration rounds", t.Migrations)
			}
			fmt.Println()
		}
		if len(t.Curve) > 0 {
			fmt.Printf("  generation-best curve (%d improvements):\n", len(t.Curve))
			for _, p := range t.Curve {
				fmt.Printf("    gen %4d  makespan %v\n", p.Generation, p.Makespan)
			}
		}
	}
}

// statsMain requests one stats snapshot from a running server and
// prints it.
func statsMain(addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	snap, err := pnsched.FetchStats(ctx, addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server %s up %v\n", addr, time.Duration(float64(snap.Uptime)*float64(time.Second)).Round(time.Millisecond))
	fmt.Printf("tasks: %d submitted, %d completed, %d reissued, %d pending, %d running (%d batches)\n",
		snap.Submitted, snap.Completed, snap.Reissued, snap.Pending, snap.Running, snap.Batches)
	if j := snap.Jobs; j != nil {
		fmt.Printf("jobs: %d queued, %d running, %d done, %d failed, %d cancelled\n",
			j.Queued, j.Running, j.Done, j.Failed, j.Cancelled)
	}
	if snap.Latency.Samples > 0 {
		fmt.Printf("dispatch latency (last %d): p50 %v  p90 %v  p99 %v\n",
			snap.Latency.Samples, snap.Latency.P50, snap.Latency.P90, snap.Latency.P99)
	}
	fmt.Printf("workers: %d\n", len(snap.Workers))
	for _, w := range snap.Workers {
		fmt.Printf("  %-20s %8.1f Mflop/s  %4d running  %6d completed\n", w.Name, float64(w.Rate), w.Running, w.Completed)
	}
	fmt.Printf("watchers: %d\n", len(snap.Watchers))
	for i, w := range snap.Watchers {
		fmt.Printf("  #%d: %d queued, %d dropped\n", i, w.Queued, w.Dropped)
	}
}

// printSchedulers renders the registry with its metadata — the same
// twelve-scheduler table the README documents.
func printSchedulers(out io.Writer) {
	fmt.Fprintf(out, "%-10s %-10s %-10s %s\n", "NAME", "MODE", "KIND", "SUMMARY")
	for _, info := range pnsched.Infos() {
		mode, kind := "immediate", "heuristic"
		if info.Batch {
			mode = "batch"
		}
		if info.GA {
			kind = "GA"
		}
		fmt.Fprintf(out, "%-10s %-10s %-10s %s\n", info.Name, mode, kind, info.Summary)
	}
	fmt.Fprintln(out, "\nbatch-mode schedulers work with both pnsim and pnserver; immediate-mode only with pnsim.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnserver:", err)
	os.Exit(1)
}
