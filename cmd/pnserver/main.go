// Command pnserver runs the dedicated scheduling processor of the
// paper's §3 as a real TCP service: it loads (or generates) a workload,
// waits for pnworker clients to connect, schedules batches with the PN
// genetic algorithm, and reports progress until every task completes.
//
// Usage:
//
//	pnserver -listen :9000 -tasks 500 &
//	pnworker -connect localhost:9000 -rate 100 &
//	pnworker -connect localhost:9000 -rate 400 &
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"pnsched"
	"pnsched/internal/dist"
	"pnsched/internal/rng"
	"pnsched/internal/sched"
	"pnsched/internal/task"
	"pnsched/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9000", "address to listen on")
		nTasks   = flag.Int("tasks", 500, "tasks to generate (ignored with -workload)")
		wlFile   = flag.String("workload", "", "load tasks from a pnworkload JSON file")
		batch    = flag.Int("batch", sched.DefaultBatchSize, "initial/fixed batch size")
		dynamic  = flag.Bool("dynamic-batch", true, "size batches dynamically (§3.7)")
		gens     = flag.Int("generations", 1000, "GA generations per batch")
		islands  = flag.Int("islands", 0, "schedule with the island-model GA across this many islands (0: sequential PN, -1: one island per CPU)")
		interval = flag.Int("migration-interval", 0, "generations between island migrations (0: default)")
		migrants = flag.Int("migrants", 0, "elites exchanged per island migration (0: default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	var tasks []task.Task
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		tasks, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tasks = workload.Generate(workload.Spec{
			N:     *nTasks,
			Sizes: workload.Uniform{Lo: 10, Hi: 1000},
		}, rng.New(*seed))
	}
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty workload: nothing to schedule"))
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	// Lower the flags onto the same public Spec scenario files and
	// library callers use; -islands != 0 selects the island-model
	// variant from the registry.
	opts := []pnsched.Option{
		pnsched.WithGenerations(*gens),
		pnsched.WithBatch(*batch),
		pnsched.WithDynamicBatch(*dynamic),
		pnsched.WithRNG(rng.New(*seed).Stream(1)),
	}
	name := "PN"
	if *islands != 0 {
		name = "PN-ISLAND"
		if *islands > 0 {
			opts = append(opts, pnsched.WithIslands(*islands))
		}
		if *interval > 0 {
			opts = append(opts, pnsched.WithMigrationInterval(*interval))
		}
		if *migrants > 0 {
			opts = append(opts, pnsched.WithMigrants(*migrants))
		}
	}
	spec, err := pnsched.NewSpec(name, opts...)
	if err != nil {
		fatal(err)
	}
	schd, err := pnsched.New(spec)
	if err != nil {
		fatal(err)
	}
	scheduler, ok := schd.(sched.Batch)
	if !ok {
		fatal(fmt.Errorf("scheduler %s is not batch-mode", schd.Name()))
	}
	srv, err := dist.NewServer(dist.ServerConfig{
		Scheduler: scheduler,
		Logf:      logf,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			fatal(err)
		}
	}()
	log.Printf("pnserver: listening on %v with %d tasks", ln.Addr(), len(tasks))

	srv.Submit(tasks)

	// Progress loop.
	start := time.Now()
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	done := make(chan error, 1)
	go func() { done <- srv.Wait(0) }()
	for {
		select {
		case err := <-done:
			if err != nil {
				fatal(err)
			}
			sub, comp, reissued, workers := srv.Stats()
			log.Printf("pnserver: %d/%d tasks complete (%d rescheduled) across %d workers in %v",
				comp, sub, reissued, workers, time.Since(start).Round(time.Millisecond))
			return
		case <-tick.C:
			if !*quiet {
				sub, comp, reissued, workers := srv.Stats()
				log.Printf("pnserver: progress %d/%d (reissued %d, workers %d)", comp, sub, reissued, workers)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnserver:", err)
	os.Exit(1)
}
