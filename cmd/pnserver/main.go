// Command pnserver runs the dedicated scheduling processor of the
// paper's §3 as a real TCP service: it loads (or generates) a workload,
// waits for pnworker clients to connect, schedules batches with the PN
// genetic algorithm, and reports progress until every task completes.
// With -watch it is instead a remote observer: it subscribes to a
// running pnserver's event stream (docs/wire-protocol.md) and prints
// every scheduling event as it happens, plus a periodic stats line.
// With -stats it requests one operational snapshot — queue depths,
// per-worker counts, dispatch-latency quantiles — and exits.
//
// Usage:
//
//	pnserver -listen :9000 -tasks 500 &
//	pnworker -connect localhost:9000 -rate 100 &
//	pnworker -connect localhost:9000 -rate 400 &
//	pnserver -watch localhost:9000
//	pnserver -stats localhost:9000
//	pnserver -schedulers
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"pnsched"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9000", "address to listen on")
		watch    = flag.String("watch", "", "watch a running server's event stream at this address instead of serving")
		stats    = flag.String("stats", "", "print a running server's stats snapshot from this address and exit")
		listSch  = flag.Bool("schedulers", false, "list the registered schedulers and exit")
		nTasks   = flag.Int("tasks", 500, "tasks to generate (ignored with -workload)")
		wlFile   = flag.String("workload", "", "load tasks from a pnworkload JSON file")
		batch    = flag.Int("batch", pnsched.DefaultBatchSize, "initial/fixed batch size")
		dynamic  = flag.Bool("dynamic-batch", true, "size batches dynamically (§3.7)")
		gens     = flag.Int("generations", 1000, "GA generations per batch")
		islands  = flag.Int("islands", 0, "schedule with the island-model GA across this many islands (0: sequential PN, -1: one island per CPU)")
		interval = flag.Int("migration-interval", 0, "generations between island migrations (0: default)")
		migrants = flag.Int("migrants", 0, "elites exchanged per island migration (0: default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *listSch {
		printSchedulers(os.Stdout)
		return
	}
	if *stats != "" {
		statsMain(*stats)
		return
	}
	if *watch != "" {
		watchMain(*watch)
		return
	}

	var tasks []pnsched.Task
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fatal(err)
		}
		tasks, err = pnsched.ReadTasks(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tasks = pnsched.GenerateTasks(*nTasks,
			pnsched.Uniform{Lo: 10, Hi: 1000}, pnsched.NewRNG(*seed))
	}
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty workload: nothing to schedule"))
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	// Lower the flags onto the same public Spec scenario files and
	// library callers use; -islands != 0 selects the island-model
	// variant from the registry.
	opts := []pnsched.Option{
		pnsched.WithGenerations(*gens),
		pnsched.WithBatch(*batch),
		pnsched.WithDynamicBatch(*dynamic),
		pnsched.WithRNG(pnsched.NewRNG(*seed).Stream(1)),
	}
	name := "PN"
	if *islands != 0 {
		name = "PN-ISLAND"
		if *islands > 0 {
			opts = append(opts, pnsched.WithIslands(*islands))
		}
		if *interval > 0 {
			opts = append(opts, pnsched.WithMigrationInterval(*interval))
		}
		if *migrants > 0 {
			opts = append(opts, pnsched.WithMigrants(*migrants))
		}
	}
	spec, err := pnsched.NewSpec(name, opts...)
	if err != nil {
		fatal(err)
	}
	ctx, cancelSignal := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignal()
	srv, err := pnsched.Serve(ctx, spec,
		pnsched.WithListenAddr(*listen),
		pnsched.WithServeLog(logf))
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	log.Printf("pnserver: listening on %v with %d tasks", srv.Addr(), len(tasks))

	srv.Submit(tasks)

	// Progress loop.
	start := time.Now()
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	done := make(chan error, 1)
	go func() { done <- srv.Wait(0) }()
	for {
		select {
		case err := <-done:
			if err != nil && ctx.Err() == nil {
				fatal(err)
			}
			st := srv.Stats()
			log.Printf("pnserver: %d/%d tasks complete (%d rescheduled) across %d workers in %v",
				st.Completed, st.Submitted, st.Reissued, st.Workers, time.Since(start).Round(time.Millisecond))
			return
		case <-tick.C:
			if !*quiet {
				st := srv.Stats()
				log.Printf("pnserver: progress %d/%d (reissued %d, workers %d, watchers %d)",
					st.Completed, st.Submitted, st.Reissued, st.Workers, st.Watchers)
			}
		}
	}
}

// watchMain subscribes to a running server's event stream and prints
// every event until the server closes or the process is interrupted,
// with a stats snapshot line every few seconds.
func watchMain(addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	w, err := pnsched.Watch(ctx, addr, pnsched.ObserverFuncs{
		BatchDecided: func(e pnsched.BatchDecision) {
			log.Printf("watch: batch %d — %s placed %d tasks over %d workers (cost %v) at %v",
				e.Invocation, e.Scheduler, e.Tasks, e.Procs, e.Cost, e.At)
		},
		GenerationBest: func(e pnsched.GenerationBest) {
			log.Printf("watch: generation %d best makespan %v", e.Generation, e.Makespan)
		},
		Migration: func(e pnsched.MigrationEvent) {
			log.Printf("watch: island migration round %d moved %d elites", e.Round, e.Migrants)
		},
		Dispatch: func(e pnsched.DispatchEvent) {
			log.Printf("watch: task %d → worker %d at %v", e.Task, e.Proc, e.At)
		},
		BudgetStop: func(e pnsched.BudgetStopEvent) {
			log.Printf("watch: GA stopped at generation %d (budget %v, spent %v)",
				e.Generation, e.Budget, e.Spent)
		},
		WorkerJoined: func(e pnsched.WorkerJoinedEvent) {
			log.Printf("watch: worker %s joined at %v Mflop/s (%d connected)", e.Name, float64(e.Rate), e.Workers)
		},
		WorkerLeft: func(e pnsched.WorkerLeftEvent) {
			log.Printf("watch: worker %s left, %d tasks reissued (%d connected)", e.Name, e.Reissued, e.Workers)
		},
	})
	if err != nil {
		fatal(err)
	}
	log.Printf("pnserver: watching %s (ctrl-c to stop)", addr)

	// Periodic stats line alongside the event stream. Older servers
	// without the stats message just don't get the line.
	statsTick := time.NewTicker(5 * time.Second)
	defer statsTick.Stop()
	go func() {
		for range statsTick.C {
			snap, err := pnsched.FetchStats(ctx, addr)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			log.Printf("watch: stats %d/%d done, %d pending, %d running, %d workers, p50 dispatch %v (up %v)",
				snap.Completed, snap.Submitted, snap.Pending, snap.Running,
				len(snap.Workers), snap.Latency.P50, time.Duration(float64(snap.Uptime)*float64(time.Second)).Round(time.Second))
		}
	}()

	if err := w.Wait(); err != nil && ctx.Err() == nil {
		fatal(err)
	}
	log.Printf("pnserver: watch ended after %d events (%d dropped)", w.Frames(), w.Dropped())
}

// statsMain requests one stats snapshot from a running server and
// prints it.
func statsMain(addr string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	snap, err := pnsched.FetchStats(ctx, addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server %s up %v\n", addr, time.Duration(float64(snap.Uptime)*float64(time.Second)).Round(time.Millisecond))
	fmt.Printf("tasks: %d submitted, %d completed, %d reissued, %d pending, %d running (%d batches)\n",
		snap.Submitted, snap.Completed, snap.Reissued, snap.Pending, snap.Running, snap.Batches)
	if snap.Latency.Samples > 0 {
		fmt.Printf("dispatch latency (last %d): p50 %v  p90 %v  p99 %v\n",
			snap.Latency.Samples, snap.Latency.P50, snap.Latency.P90, snap.Latency.P99)
	}
	fmt.Printf("workers: %d\n", len(snap.Workers))
	for _, w := range snap.Workers {
		fmt.Printf("  %-20s %8.1f Mflop/s  %4d running  %6d completed\n", w.Name, float64(w.Rate), w.Running, w.Completed)
	}
	fmt.Printf("watchers: %d\n", len(snap.Watchers))
	for i, w := range snap.Watchers {
		fmt.Printf("  #%d: %d queued, %d dropped\n", i, w.Queued, w.Dropped)
	}
}

// printSchedulers renders the registry with its metadata — the same
// twelve-scheduler table the README documents.
func printSchedulers(out io.Writer) {
	fmt.Fprintf(out, "%-10s %-10s %-10s %s\n", "NAME", "MODE", "KIND", "SUMMARY")
	for _, info := range pnsched.Infos() {
		mode, kind := "immediate", "heuristic"
		if info.Batch {
			mode = "batch"
		}
		if info.GA {
			kind = "GA"
		}
		fmt.Fprintf(out, "%-10s %-10s %-10s %s\n", info.Name, mode, kind, info.Summary)
	}
	fmt.Fprintln(out, "\nbatch-mode schedulers work with both pnsim and pnserver; immediate-mode only with pnsim.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnserver:", err)
	os.Exit(1)
}
