// Command pnworkload generates synthetic task sets (uniform, normal or
// Poisson sizes, per the paper's §4) and writes them as JSON for use
// with pnsim -workload or the distributed runtime.
//
// Usage:
//
//	pnworkload -n 1000 -dist normal -mean 1000 -variance 9e5 > tasks.json
//	pnworkload -n 500 -dist uniform -lo 10 -hi 10000 -out tasks.json
//	pnworkload -n 200 -dist poisson -mean 100 -arrival-gap 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pnsched/internal/rng"
	"pnsched/internal/units"
	"pnsched/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of tasks")
		dist     = flag.String("dist", "uniform", "distribution: normal, uniform, poisson, constant")
		mean     = flag.Float64("mean", 1000, "mean size (normal/poisson/constant), MFLOPs")
		variance = flag.Float64("variance", 9e5, "size variance (normal)")
		lo       = flag.Float64("lo", 10, "lower size bound (uniform)")
		hi       = flag.Float64("hi", 1000, "upper size bound (uniform)")
		gap      = flag.Float64("arrival-gap", 0, "mean inter-arrival gap in seconds (0: all at t=0)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var d workload.SizeDistribution
	switch *dist {
	case "normal":
		d = workload.Normal{Mean: units.MFlops(*mean), Variance: *variance}
	case "uniform":
		d = workload.Uniform{Lo: units.MFlops(*lo), Hi: units.MFlops(*hi)}
	case "poisson":
		d = workload.Poisson{Mean: units.MFlops(*mean)}
	case "constant":
		d = workload.Constant{Size: units.MFlops(*mean)}
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}

	spec := workload.Spec{N: *n, Sizes: d}
	if *gap > 0 {
		spec.Arrival = workload.PoissonArrivals{MeanGap: units.Seconds(*gap)}
	}
	tasks := workload.Generate(spec, rng.New(*seed))

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteJSON(w, tasks, d.Name()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnworkload:", err)
	os.Exit(1)
}
