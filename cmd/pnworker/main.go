// Command pnworker is a client processor for pnserver: it rates itself
// with the Linpack benchmark (or a claimed -rate), connects to the
// scheduling server, and processes tasks until shut down.
//
// Usage:
//
//	pnworker -connect localhost:9000              # Linpack-rated
//	pnworker -connect localhost:9000 -rate 250    # claimed rate
//	pnworker -connect localhost:9000 -timescale 0.001   # compressed time
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"

	"pnsched"
)

func main() {
	var (
		connect   = flag.String("connect", "127.0.0.1:9000", "server address")
		name      = flag.String("name", "", "worker name (default host-pid)")
		rate      = flag.Float64("rate", 0, "claimed Mflop/s (0: measure with Linpack)")
		timescale = flag.Float64("timescale", 1, "real seconds per simulated processing second")
		linpackN  = flag.Int("linpack-n", 300, "Linpack problem size for self-rating")
	)
	flag.Parse()

	if *name == "" {
		*name = pnsched.WorkerName()
	}

	r := pnsched.Rate(*rate)
	if r <= 0 {
		measured, err := pnsched.LinpackRate(*linpackN, uint64(os.Getpid()))
		if err != nil {
			fatal(err)
		}
		r = measured
		slog.Info("self-rated with Linpack", "worker", *name, "n", *linpackN, "rate", float64(r))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	slog.Info("connecting", "worker", *name, "server", *connect, "rate", float64(r))
	err := pnsched.RunWorker(ctx, *connect, pnsched.WorkerConfig{
		Name:      *name,
		Rate:      r,
		TimeScale: *timescale,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	slog.Info("worker done", "worker", *name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnworker:", err)
	os.Exit(1)
}
